//! Dataflow graphs of streaming nodes and the untimed executor.
//!
//! A [`Graph`] owns nodes, channels, and the shared [`MemoryState`]. The
//! untimed executor runs it as a Kahn-style process network: rounds of node
//! steps with unbounded channels until quiescence. It is the *functional
//! reference* for compiled programs; the cycle-level simulator (crate
//! `revet-sim`) re-executes the same graph under timing constraints.

use crate::channel::Channel;
use crate::mem::MemoryState;
use crate::node::{ChanId, MachineError, Node, NodeId, NodeIo, PortBudget};
use std::fmt;

/// What kind of physical unit a node maps to (§VI-A: CUs, MUs, AGs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum UnitClass {
    /// Compute unit (pipeline stages, merges, counters, filters).
    #[default]
    Compute,
    /// Memory unit (SRAM access, allocator queues, retiming buffers).
    Memory,
    /// DRAM address generator.
    AddressGen,
    /// Not a physical unit (sources/sinks used for test harnesses).
    Virtual,
}

/// A node slot: behavior plus wiring and placement metadata.
pub struct NodeSlot {
    /// The behavior (taken out while stepping).
    pub behavior: Option<Box<dyn Node>>,
    /// Input channels, in port order.
    pub ins: Vec<ChanId>,
    /// Output channels, in port order.
    pub outs: Vec<ChanId>,
    /// Debug label ("bb3.filter", "loop2.head", …).
    pub label: String,
    /// Streaming-context id assigned by the compiler (groups nodes that fuse
    /// into one physical unit); `u32::MAX` = unassigned.
    pub context: u32,
    /// Placement class.
    pub unit: UnitClass,
}

impl fmt::Debug for NodeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeSlot")
            .field("label", &self.label)
            .field("ins", &self.ins)
            .field("outs", &self.outs)
            .field("context", &self.context)
            .field("unit", &self.unit)
            .finish()
    }
}

/// A dataflow graph: nodes, channels, and shared memory.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<NodeSlot>,
    chans: Vec<Channel>,
    /// Shared DRAM / SRAM / allocator state.
    pub mem: MemoryState,
}

/// Summary of an untimed run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecReport {
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Node steps that made progress.
    pub productive_steps: u64,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a channel; returns its id.
    pub fn add_chan(&mut self, chan: Channel) -> ChanId {
        let id = ChanId(self.chans.len() as u32);
        self.chans.push(chan);
        id
    }

    /// Adds a node wired to the given channels; returns its id.
    pub fn add_node(
        &mut self,
        label: impl Into<String>,
        behavior: Box<dyn Node>,
        ins: Vec<ChanId>,
        outs: Vec<ChanId>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            behavior: Some(behavior),
            ins,
            outs,
            label: label.into(),
            context: u32::MAX,
            unit: UnitClass::Compute,
        });
        id
    }

    /// Sets placement metadata on a node.
    pub fn set_node_meta(&mut self, id: NodeId, context: u32, unit: UnitClass) {
        let slot = &mut self.nodes[id.0 as usize];
        slot.context = context;
        slot.unit = unit;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of channels.
    pub fn chan_count(&self) -> usize {
        self.chans.len()
    }

    /// Node slots (for inspection / placement / timing).
    pub fn nodes(&self) -> &[NodeSlot] {
        &self.nodes
    }

    /// A node slot by id.
    pub fn node(&self, id: NodeId) -> &NodeSlot {
        &self.nodes[id.0 as usize]
    }

    /// Channels (for inspection).
    pub fn chans(&self) -> &[Channel] {
        &self.chans
    }

    /// Mutable channel access (simulator wiring).
    pub fn chan_mut(&mut self, id: ChanId) -> &mut Channel {
        &mut self.chans[id.0 as usize]
    }

    /// Steps one node once with the given port budgets. Returns whether the
    /// node made progress.
    ///
    /// # Errors
    ///
    /// Propagates node protocol errors, attributed with the node label.
    pub fn step_node(
        &mut self,
        id: NodeId,
        in_budget: &mut [PortBudget],
        out_budget: &mut [PortBudget],
    ) -> Result<bool, MachineError> {
        let idx = id.0 as usize;
        let mut behavior = self.nodes[idx]
            .behavior
            .take()
            .expect("node behavior missing (reentrant step?)");
        let slot_ins = std::mem::take(&mut self.nodes[idx].ins);
        let slot_outs = std::mem::take(&mut self.nodes[idx].outs);
        let mut io = NodeIo::new(
            &mut self.chans,
            &slot_ins,
            &slot_outs,
            &mut self.mem,
            in_budget,
            out_budget,
        );
        let result = behavior.step(&mut io);
        self.nodes[idx].ins = slot_ins;
        self.nodes[idx].outs = slot_outs;
        self.nodes[idx].behavior = Some(behavior);
        result.map_err(|mut e| {
            if e.node.is_none() {
                e.node = Some(self.nodes[idx].label.clone());
            }
            e
        })
    }

    /// Runs the graph untimed (unbounded budgets) until quiescence.
    ///
    /// # Errors
    ///
    /// Returns a node error, a round-limit error (suspected livelock), or a
    /// deadlock diagnosis listing stuck channels.
    pub fn run_untimed(&mut self, max_rounds: u64) -> Result<ExecReport, MachineError> {
        let n = self.nodes.len();
        let mut report = ExecReport {
            rounds: 0,
            productive_steps: 0,
        };
        loop {
            if report.rounds >= max_rounds {
                return Err(MachineError::new(format!(
                    "no quiescence after {max_rounds} rounds (livelock or huge workload)"
                )));
            }
            report.rounds += 1;
            let mut any = false;
            for i in 0..n {
                let n_in = self.nodes[i].ins.len();
                let n_out = self.nodes[i].outs.len();
                let mut ib = vec![PortBudget::UNLIMITED; n_in];
                let mut ob = vec![PortBudget::UNLIMITED; n_out];
                if self.step_node(NodeId(i as u32), &mut ib, &mut ob)? {
                    any = true;
                    report.productive_steps += 1;
                }
            }
            if !any {
                break;
            }
        }
        // Quiescent: every channel with a consumer should be drained.
        let mut stuck = Vec::new();
        for (ci, chan) in self.chans.iter().enumerate() {
            if !chan.is_empty() {
                // Channels nobody reads (dangling outputs) are allowed to
                // retain tokens; all others signal deadlock.
                let has_consumer = self
                    .nodes
                    .iter()
                    .any(|nodeslot| nodeslot.ins.contains(&ChanId(ci as u32)));
                if has_consumer {
                    let consumer = self
                        .nodes
                        .iter()
                        .find(|nodeslot| nodeslot.ins.contains(&ChanId(ci as u32)))
                        .map(|s| s.label.clone())
                        .unwrap_or_default();
                    stuck.push(format!(
                        "channel #{ci} -> '{consumer}': {} tokens pending",
                        chan.len()
                    ));
                }
            }
        }
        if !stuck.is_empty() {
            return Err(MachineError::new(format!(
                "deadlock at quiescence: {}",
                stuck.join("; ")
            )));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, EwInstr, Operand};
    use crate::nodes::{EwNode, OutputSpec, SinkNode, SourceNode};
    use crate::tuple::{tbar, tdata};

    #[test]
    fn pipeline_source_ew_sink() {
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([4u32]), tbar(1)])),
            vec![],
            vec![c0],
        );
        g.add_node(
            "double",
            Box::new(EwNode::new(
                1,
                vec![EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(0),
                    b: Operand::Reg(0),
                    dst: 1,
                }],
                vec![OutputSpec::plain([1])],
            )),
            vec![c0],
            vec![c1],
        );
        let (sink, handle) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c1], vec![]);
        let report = g.run_untimed(100).unwrap();
        assert!(report.productive_steps >= 3);
        assert_eq!(handle.tokens(), vec![tdata([8u32]), tbar(1)]);
    }

    #[test]
    fn deadlock_detected() {
        // A consumer that needs two inputs but only one is fed.
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        let c2 = g.add_chan(Channel::new(2));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([1u32])])),
            vec![],
            vec![c0],
        );
        // c1 never receives anything.
        g.add_node(
            "zip",
            Box::new(EwNode::passthrough(2)),
            vec![c0, c1],
            vec![c2],
        );
        let (sink, _h) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c2], vec![]);
        let err = g.run_untimed(100).unwrap_err();
        assert!(err.message.contains("deadlock"), "got: {err}");
    }

    #[test]
    fn round_limit_reported() {
        // An endless loop: counter feeding itself through fork is hard to
        // build by accident; emulate livelock by a source with huge output
        // and a tiny round cap.
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1).with_capacity(1));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([1u32]), tdata([2u32])])),
            vec![],
            vec![c0],
        );
        // No consumer: source can push one token then stalls forever; with
        // max_rounds=0 we hit the cap immediately.
        let err = g.run_untimed(0).unwrap_err();
        assert!(err.message.contains("no quiescence"), "got: {err}");
    }
}
