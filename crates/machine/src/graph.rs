//! Dataflow graphs of streaming nodes and the untimed executor.
//!
//! A [`Graph`] owns nodes, channels, and the shared [`MemoryState`]. The
//! untimed executor runs it as a Kahn-style process network until
//! quiescence. It is the *functional reference* for compiled programs; the
//! cycle-level simulator (crate `revet-sim`) re-executes the same graph
//! under timing constraints.
//!
//! ## Event-driven scheduling
//!
//! Both executors are driven by token availability, not dense sweeps. A
//! precomputed [`TopologyIndex`] maps every channel to its producer and
//! consumer nodes; [`IoEvents`] records which channels gained tokens or
//! regained capacity during a step. The executor keeps a ready worklist and
//! re-enqueues a node only when
//!
//! 1. one of its **input channels gains a token** (it may now fire),
//! 2. one of its **output channels regains capacity** after being full
//!    (back-pressure release — only possible on bounded channels), or
//! 3. a pointer is **pushed to an allocator queue** and the node declares
//!    [`Node::may_stall_on_alloc`] (allocator releases are the one
//!    progress-enabling state change invisible on the channel network).
//!
//! Because nodes are Kahn processes (blocking reads, no sampling of
//! channel emptiness), the final token streams and memory state are
//! independent of the order in which ready nodes are drained; only the
//! amount of scheduler work changes. The retained dense-sweep reference
//! ([`Graph::run_untimed_dense`]) pins that equivalence in tests.

use crate::channel::Channel;
use crate::mem::MemoryState;
use crate::node::{ChanId, IoEvents, MachineError, Node, NodeId, NodeIo, PortBudget};
use crate::tuple::TTok;
use revet_obs::{ObsSink, StallClass, WakeCause};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// What kind of physical unit a node maps to (§VI-A: CUs, MUs, AGs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum UnitClass {
    /// Compute unit (pipeline stages, merges, counters, filters).
    #[default]
    Compute,
    /// Memory unit (SRAM access, allocator queues, retiming buffers).
    Memory,
    /// DRAM address generator.
    AddressGen,
    /// Not a physical unit (sources/sinks used for test harnesses).
    Virtual,
}

/// A node slot: behavior plus wiring and placement metadata.
pub struct NodeSlot {
    /// The behavior (taken out while stepping).
    pub behavior: Option<Box<dyn Node>>,
    /// Input channels, in port order.
    pub ins: Vec<ChanId>,
    /// Output channels, in port order.
    pub outs: Vec<ChanId>,
    /// Debug label ("bb3.filter", "loop2.head", …).
    pub label: String,
    /// Streaming-context id assigned by the compiler (groups nodes that fuse
    /// into one physical unit); `u32::MAX` = unassigned.
    pub context: u32,
    /// Placement class.
    pub unit: UnitClass,
}

impl fmt::Debug for NodeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeSlot")
            .field("label", &self.label)
            .field("ins", &self.ins)
            .field("outs", &self.outs)
            .field("context", &self.context)
            .field("unit", &self.unit)
            .finish()
    }
}

/// Precomputed channel-endpoint index: who produces into and consumes from
/// every channel, plus which nodes can stall on allocator queues.
///
/// Built once per wiring ([`Graph::finalize_topology`], called by the
/// compiler when it finishes a [`Graph`]); invalidated by any later
/// `add_node`/`add_chan`. Shared by the untimed executor and the
/// cycle-level simulator for ready-set wake-ups and one-pass deadlock
/// diagnosis.
#[derive(Debug, Clone, Default)]
pub struct TopologyIndex {
    /// Per channel: nodes reading it (almost always exactly one).
    consumers: Vec<Vec<NodeId>>,
    /// Per channel: nodes writing it (almost always exactly one).
    producers: Vec<Vec<NodeId>>,
    /// Nodes whose behavior may stall on allocator availability.
    alloc_waiters: Vec<NodeId>,
}

impl TopologyIndex {
    fn build(nodes: &[NodeSlot], chan_count: usize) -> Self {
        let mut consumers = vec![Vec::new(); chan_count];
        let mut producers = vec![Vec::new(); chan_count];
        let mut alloc_waiters = Vec::new();
        for (i, slot) in nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for c in &slot.ins {
                consumers[c.0 as usize].push(id);
            }
            for c in &slot.outs {
                producers[c.0 as usize].push(id);
            }
            if slot
                .behavior
                .as_ref()
                .is_some_and(|b| b.may_stall_on_alloc())
            {
                alloc_waiters.push(id);
            }
        }
        TopologyIndex {
            consumers,
            producers,
            alloc_waiters,
        }
    }

    /// Nodes consuming from channel `c`.
    pub fn consumers(&self, c: ChanId) -> &[NodeId] {
        &self.consumers[c.0 as usize]
    }

    /// Nodes producing into channel `c`.
    pub fn producers(&self, c: ChanId) -> &[NodeId] {
        &self.producers[c.0 as usize]
    }

    /// Nodes that can stall on allocator-queue availability.
    pub fn alloc_waiters(&self) -> &[NodeId] {
        &self.alloc_waiters
    }
}

/// A dataflow graph: nodes, channels, and shared memory.
///
/// A graph is **per-instance execution state**: node behaviors, channel
/// queues, and [`MemoryState`] all mutate as the graph runs. The one
/// exception is the [`TopologyIndex`], which depends only on the wiring and
/// is held behind an [`Arc`] so every instance cloned from one compiled
/// graph ([`Graph::fresh_instance`]) shares a single copy. Graphs are
/// `Send` (every [`Node`] is `Send + Sync`), so instances can run on
/// worker threads.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<NodeSlot>,
    chans: Vec<Channel>,
    /// Shared DRAM / SRAM / allocator state.
    pub mem: MemoryState,
    /// Channel-endpoint index, shared across instances of the same wiring;
    /// `None` until finalized or after rewiring.
    topo: Option<Arc<TopologyIndex>>,
}

/// How a resumable untimed run ended.
///
/// Returned by the `*_resumable` executor entry points: `Finished` means
/// quiescence with every consumer-attached channel drained (the condition
/// the one-shot executors demand); `Paused` means quiescence with tokens
/// still pending — under streaming that is "waiting for more input", and
/// the same state a one-shot run reports as a deadlock. The caller decides
/// which reading applies (a stream's `finish()` converts a final `Paused`
/// into the deadlock diagnosis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunStatus {
    /// Clean quiescence: all consumer-attached channels drained.
    Finished,
    /// Quiescence with tokens still queued — resumable once more input
    /// arrives ([`Graph::feed_source`] or a direct channel push).
    Paused,
}

/// Reusable scheduler state for resumable (streaming) execution.
///
/// A fresh state makes the first `*_resumable` run identical to a one-shot
/// run: every node is seeded into the worklist. Subsequent runs on the
/// same state re-seed only what can make progress — consumers of non-empty
/// channels, allocator-gated nodes, and nodes holding internal pending
/// input ([`Node::pending_input_tokens`], i.e. fed sources). Spurious
/// seeds are harmless (an unproductive step), and any node able to make
/// progress is covered: progress requires an input token, internal
/// pending state, or allocator availability, all of which the re-seed rule
/// observes. The worklist buffers live here so repeated polls never
/// reallocate; one state must only ever drive the graph it was first run
/// against.
#[derive(Debug, Default)]
pub struct ResumeState {
    started: bool,
    current: VecDeque<u32>,
    next: VecDeque<u32>,
    queued: Vec<bool>,
}

impl ResumeState {
    /// Fresh state: the next resumable run seeds every node, exactly like
    /// a one-shot run.
    pub fn new() -> Self {
        ResumeState::default()
    }

    /// Whether a run has already consumed this state (later runs use the
    /// incremental re-seed rule).
    pub fn started(&self) -> bool {
        self.started
    }

    /// Marks the state started, returning whether it already was — the
    /// plan executor's first-run/resume discriminator (it keeps its own
    /// bitmap worklist and only shares this flag).
    pub(crate) fn take_started(&mut self) -> bool {
        std::mem::replace(&mut self.started, true)
    }
}

/// Summary of an untimed run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExecReport {
    /// Scheduler generations executed (worklist drains; comparable to the
    /// dense sweep's rounds — the livelock cap counts these).
    pub rounds: u64,
    /// Node steps that made progress (moved at least one token).
    pub productive_steps: u64,
    /// Node steps attempted by the scheduler. The dense sweep attempts
    /// `rounds × nodes`; the ready-set executor only steps woken nodes, so
    /// this is the "work" a scheduler comparison should look at.
    pub steps: u64,
    /// High watermark of worklist occupancy at the start of any round — the
    /// peak instantaneous parallelism the scheduler saw. A **max-merged**
    /// watermark, not an additive counter.
    pub peak_ready: u64,
}

impl ExecReport {
    /// Fraction of attempted steps that made progress (1.0 when no steps
    /// were attempted — an empty run wastes nothing).
    pub fn productive_ratio(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.productive_steps as f64 / self.steps as f64
        }
    }

    /// Folds another run's counters into this report — batch aggregation
    /// across program instances. The three step counters **add**; the
    /// `peak_ready` watermark merges by **max** (a peak observed by any
    /// instance is a peak of the batch — summing watermarks would invent a
    /// parallelism level no scheduler ever saw).
    pub fn merge(&mut self, other: &ExecReport) {
        self.rounds += other.rounds;
        self.productive_steps += other.productive_steps;
        self.steps += other.steps;
        self.peak_ready = self.peak_ready.max(other.peak_ready);
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a channel; returns its id.
    pub fn add_chan(&mut self, chan: Channel) -> ChanId {
        self.topo = None;
        let id = ChanId(self.chans.len() as u32);
        self.chans.push(chan);
        id
    }

    /// Adds a node wired to the given channels; returns its id.
    pub fn add_node(
        &mut self,
        label: impl Into<String>,
        behavior: Box<dyn Node>,
        ins: Vec<ChanId>,
        outs: Vec<ChanId>,
    ) -> NodeId {
        self.topo = None;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeSlot {
            behavior: Some(behavior),
            ins,
            outs,
            label: label.into(),
            context: u32::MAX,
            unit: UnitClass::Compute,
        });
        id
    }

    /// Sets placement metadata on a node.
    pub fn set_node_meta(&mut self, id: NodeId, context: u32, unit: UnitClass) {
        let slot = &mut self.nodes[id.0 as usize];
        slot.context = context;
        slot.unit = unit;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of channels.
    pub fn chan_count(&self) -> usize {
        self.chans.len()
    }

    /// Node slots (for inspection / placement / timing).
    pub fn nodes(&self) -> &[NodeSlot] {
        &self.nodes
    }

    /// A node slot by id.
    pub fn node(&self, id: NodeId) -> &NodeSlot {
        &self.nodes[id.0 as usize]
    }

    /// Channels (for inspection).
    pub fn chans(&self) -> &[Channel] {
        &self.chans
    }

    /// Mutable channel access (simulator wiring). Capacity/class changes do
    /// not alter endpoints, so the topology index stays valid.
    pub fn chan_mut(&mut self, id: ChanId) -> &mut Channel {
        &mut self.chans[id.0 as usize]
    }

    /// Split mutable access to the channel table and memory state — the
    /// plan executor pops, computes against memory, and pushes in one
    /// borrow scope.
    pub(crate) fn chans_and_mem_mut(&mut self) -> (&mut [Channel], &mut MemoryState) {
        (&mut self.chans, &mut self.mem)
    }

    /// Like [`Graph::chans_and_mem_mut`] with the node slots alongside
    /// (read-only, for error attribution while channels are borrowed).
    pub(crate) fn split_mut(&mut self) -> (&mut [Channel], &mut MemoryState, &[NodeSlot]) {
        (&mut self.chans, &mut self.mem, &self.nodes)
    }

    /// Builds (or reuses) the channel-endpoint index for the current wiring.
    /// The compiler calls this once when a program's graph is complete;
    /// executors call it defensively before running.
    pub fn finalize_topology(&mut self) -> &TopologyIndex {
        if self.topo.is_none() {
            self.topo = Some(Arc::new(TopologyIndex::build(
                &self.nodes,
                self.chans.len(),
            )));
        }
        self.topo.as_deref().expect("just built")
    }

    /// The topology index, if the current wiring has been finalized.
    pub fn topology(&self) -> Option<&TopologyIndex> {
        self.topo.as_deref()
    }

    /// A shared handle to the finalized topology index (building it if
    /// needed). Instances cloned from this graph hold the same `Arc`, so
    /// the index is computed once per compile, not once per instance.
    pub fn topology_handle(&mut self) -> Arc<TopologyIndex> {
        self.finalize_topology();
        self.topo.clone().expect("just finalized")
    }

    /// Deep-clones this graph into a fresh, independently runnable
    /// instance: node state, channel contents, and memory are copied;
    /// result-collecting sinks get **fresh, empty** buffers (instances
    /// never share result storage); the immutable [`TopologyIndex`] is
    /// shared via [`Arc`] rather than rebuilt.
    ///
    /// This is the machine half of the compile-once/run-many split: the
    /// compiler finishes a graph once, and the batch runtime clones it
    /// into as many concurrent instances as it needs.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from inside a node step (a behavior is
    /// checked out mid-step).
    pub fn fresh_instance(&self) -> Graph {
        Graph {
            nodes: self
                .nodes
                .iter()
                .map(|slot| NodeSlot {
                    behavior: Some(
                        slot.behavior
                            .as_ref()
                            .expect("fresh_instance during a node step")
                            .clone_node(),
                    ),
                    ins: slot.ins.clone(),
                    outs: slot.outs.clone(),
                    label: slot.label.clone(),
                    context: slot.context,
                    unit: slot.unit,
                })
                .collect(),
            chans: self.chans.clone(),
            mem: self.mem.clone(),
            topo: self.topo.clone(),
        }
    }

    /// Steps one node once with the given port budgets. Returns whether the
    /// node made progress.
    ///
    /// # Errors
    ///
    /// Propagates node protocol errors, attributed with the node label; a
    /// reentrant step (behavior already checked out) is reported as a
    /// [`MachineError`] rather than a crash.
    pub fn step_node(
        &mut self,
        id: NodeId,
        in_budget: &mut [PortBudget],
        out_budget: &mut [PortBudget],
    ) -> Result<bool, MachineError> {
        self.step_node_inner(id, in_budget, out_budget, None)
    }

    /// Like [`Graph::step_node`], additionally recording channel gain/free
    /// events into `events` (cleared first) for ready-set scheduling.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::step_node`].
    pub fn step_node_traced(
        &mut self,
        id: NodeId,
        in_budget: &mut [PortBudget],
        out_budget: &mut [PortBudget],
        events: &mut IoEvents,
    ) -> Result<bool, MachineError> {
        events.clear();
        self.step_node_inner(id, in_budget, out_budget, Some(events))
    }

    fn step_node_inner(
        &mut self,
        id: NodeId,
        in_budget: &mut [PortBudget],
        out_budget: &mut [PortBudget],
        events: Option<&mut IoEvents>,
    ) -> Result<bool, MachineError> {
        let idx = id.0 as usize;
        let Some(mut behavior) = self.nodes[idx].behavior.take() else {
            return Err(MachineError {
                node: Some(self.nodes[idx].label.clone()),
                message: "reentrant step: node behavior already checked out \
                          (a node stepped itself, or an executor re-entered the graph)"
                    .into(),
            });
        };
        let slot_ins = std::mem::take(&mut self.nodes[idx].ins);
        let slot_outs = std::mem::take(&mut self.nodes[idx].outs);
        let mut io = NodeIo::new(
            &mut self.chans,
            &slot_ins,
            &slot_outs,
            &mut self.mem,
            in_budget,
            out_budget,
        );
        if let Some(ev) = events {
            io = io.with_events(ev);
        }
        let result = behavior.step(&mut io);
        self.nodes[idx].ins = slot_ins;
        self.nodes[idx].outs = slot_outs;
        self.nodes[idx].behavior = Some(behavior);
        result.map_err(|mut e| {
            if e.node.is_none() {
                e.node = Some(self.nodes[idx].label.clone());
            }
            e
        })
    }

    /// One-pass deadlock diagnosis over the consumer index: every non-empty
    /// channel that *has* a consumer is stuck (channels nobody reads —
    /// dangling outputs — may legally retain tokens). Returns one line per
    /// stuck channel with its consumer labels. Used by both executors at
    /// quiescence; an empty result means a clean drain.
    pub fn stuck_channels(&self) -> Vec<String> {
        match &self.topo {
            Some(t) => self.stuck_channel_report(t),
            None => {
                let t = TopologyIndex::build(&self.nodes, self.chans.len());
                self.stuck_channel_report(&t)
            }
        }
    }

    fn stuck_channel_report(&self, topo: &TopologyIndex) -> Vec<String> {
        let mut stuck = Vec::new();
        for (ci, chan) in self.chans.iter().enumerate() {
            if chan.is_empty() {
                continue;
            }
            let consumers = topo.consumers(ChanId(ci as u32));
            if consumers.is_empty() {
                continue;
            }
            let labels: Vec<&str> = consumers
                .iter()
                .map(|id| self.nodes[id.0 as usize].label.as_str())
                .collect();
            stuck.push(format!(
                "channel #{ci} -> '{}': {} tokens pending",
                labels.join(", "),
                chan.len()
            ));
        }
        stuck
    }

    /// Runs the graph untimed (unbounded budgets) until quiescence, using
    /// the event-driven ready-set scheduler: a node is stepped only when an
    /// input channel gained tokens, an output channel regained capacity, or
    /// an allocator it can block on received a pointer (see module docs).
    ///
    /// # Errors
    ///
    /// Returns a node error, a round-limit error (suspected livelock), or a
    /// deadlock diagnosis listing all stuck channels.
    pub fn run_untimed(&mut self, max_rounds: u64) -> Result<ExecReport, MachineError> {
        self.run_untimed_obs(max_rounds, ObsSink::noop())
    }

    /// [`Graph::run_untimed`] with an observability sink: dispatches, wake
    /// causes, and per-node stall attribution are recorded into `obs`. Pass
    /// [`ObsSink::noop`] (what `run_untimed` does) to keep the hot path at
    /// one predictable branch per event site.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::run_untimed`].
    pub fn run_untimed_obs(
        &mut self,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<ExecReport, MachineError> {
        self.run_with_topology(|g, topo| g.run_untimed_ready(topo, max_rounds, obs))
    }

    /// Runs the graph with the ready-set scheduler in **suspend-at-
    /// quiescence** mode: instead of reporting leftover tokens as a
    /// deadlock, the run returns [`RunStatus::Paused`] and leaves every
    /// channel ring and node state live, ready to resume after more input
    /// is fed ([`Graph::feed_source`] or a direct entry-channel push). The
    /// same `resume` state must be passed to every run of one streaming
    /// session; a fresh state makes the first run seed every node exactly
    /// like [`Graph::run_untimed`].
    ///
    /// # Errors
    ///
    /// Node protocol errors and the round cap. Leftover tokens are *not*
    /// an error here — that is the `Paused` status.
    pub fn run_untimed_resumable(
        &mut self,
        resume: &mut ResumeState,
        max_rounds: u64,
    ) -> Result<(ExecReport, RunStatus), MachineError> {
        self.run_untimed_resumable_obs(resume, max_rounds, ObsSink::noop())
    }

    /// [`Graph::run_untimed_resumable`] with an observability sink.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::run_untimed_resumable`].
    pub fn run_untimed_resumable_obs(
        &mut self,
        resume: &mut ResumeState,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<(ExecReport, RunStatus), MachineError> {
        self.finalize_topology();
        let topo = self.topo.clone().expect("just finalized");
        self.run_untimed_ready_core(&topo, resume, true, max_rounds, obs)
    }

    /// Appends tokens to the internal pending queue of source node `id`
    /// ([`Node::feed_tokens`]) — how a paused streaming graph receives its
    /// next input chunk. The next resumable run re-wakes the source.
    ///
    /// # Errors
    ///
    /// Returns an error if the node is not an input endpoint, or its
    /// behavior is checked out mid-step.
    pub fn feed_source(&mut self, id: NodeId, tokens: Vec<TTok>) -> Result<(), MachineError> {
        let slot = &mut self.nodes[id.0 as usize];
        let Some(behavior) = slot.behavior.as_mut() else {
            return Err(MachineError {
                node: Some(slot.label.clone()),
                message: "feed_source during a node step (behavior checked out)".into(),
            });
        };
        behavior.feed_tokens(tokens).map_err(|mut e| {
            if e.node.is_none() {
                e.node = Some(slot.label.clone());
            }
            e
        })
    }

    /// Approximate resident heap bytes of this graph's mutable streaming
    /// state: queued channel tokens plus node-internal state (pending
    /// source input, collected sink output). Excludes the fixed-size
    /// memory image — per-session accounting wants the part that grows
    /// with buffered work.
    pub fn resident_bytes(&self) -> u64 {
        let chan_bytes: usize = self.chans.iter().map(Channel::resident_bytes).sum();
        let node_bytes: usize = self
            .nodes
            .iter()
            .filter_map(|s| s.behavior.as_ref())
            .map(|b| b.resident_bytes())
            .sum();
        (chan_bytes + node_bytes) as u64
    }

    /// Classifies why a node that was just stepped made no progress, by
    /// inspecting its channel endpoints: an empty input means
    /// **input-starved**; otherwise a bounded output at capacity means
    /// **output-full**; otherwise a node that can block on an allocator
    /// queue is **allocator-gated**. (DRAM gating exists only in the timed
    /// simulator, which attributes it at the deferral site.) Shared by the
    /// ready-set executor, the plan executor, and the simulator.
    pub fn classify_stall(&self, id: NodeId) -> StallClass {
        let slot = &self.nodes[id.0 as usize];
        if slot.ins.iter().any(|c| self.chans[c.0 as usize].is_empty()) {
            return StallClass::InputStarved;
        }
        if slot
            .outs
            .iter()
            .any(|c| self.chans[c.0 as usize].room() == 0)
        {
            return StallClass::OutputFull;
        }
        if slot
            .behavior
            .as_ref()
            .is_some_and(|b| b.may_stall_on_alloc())
        {
            return StallClass::AllocGated;
        }
        // No visibly blocked endpoint: the node is waiting for *more* input
        // than any one channel shows (e.g. a barrier-aligned zip).
        StallClass::InputStarved
    }

    /// Hands an executor a shared handle to the topology index so it can
    /// hold the index while mutably stepping the graph (the `Arc` clone
    /// keeps the graph borrowable).
    fn run_with_topology<F>(&mut self, f: F) -> Result<ExecReport, MachineError>
    where
        F: FnOnce(&mut Self, &TopologyIndex) -> Result<ExecReport, MachineError>,
    {
        self.finalize_topology();
        let topo = self.topo.clone().expect("just finalized");
        f(self, &topo)
    }

    fn run_untimed_ready(
        &mut self,
        topo: &TopologyIndex,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<ExecReport, MachineError> {
        let mut resume = ResumeState::new();
        let (report, _) = self.run_untimed_ready_core(topo, &mut resume, false, max_rounds, obs)?;
        Ok(report)
    }

    /// Seeds a resumable run's worklist. First run: every node (identical
    /// to a one-shot run). Resume: consumers of non-empty channels, every
    /// allocator waiter, and nodes holding internal pending input — the
    /// three places progress-enabling state can hide while quiescent.
    fn seed_resume(&self, topo: &TopologyIndex, resume: &mut ResumeState) {
        let n = self.nodes.len();
        resume.queued.resize(n, false);
        if !resume.started {
            resume.started = true;
            resume.current.extend(0..n as u32);
            resume.queued.fill(true);
            return;
        }
        let seed = |id: NodeId, resume: &mut ResumeState| {
            if !resume.queued[id.0 as usize] {
                resume.queued[id.0 as usize] = true;
                resume.current.push_back(id.0);
            }
        };
        for (ci, chan) in self.chans.iter().enumerate() {
            if !chan.is_empty() {
                for &c in topo.consumers(ChanId(ci as u32)) {
                    seed(c, resume);
                }
            }
        }
        for &w in topo.alloc_waiters() {
            seed(w, resume);
        }
        for (i, slot) in self.nodes.iter().enumerate() {
            if slot
                .behavior
                .as_ref()
                .is_some_and(|b| b.pending_input_tokens() > 0)
            {
                seed(NodeId(i as u32), resume);
            }
        }
    }

    fn run_untimed_ready_core(
        &mut self,
        topo: &TopologyIndex,
        resume: &mut ResumeState,
        suspend_at_quiescence: bool,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<(ExecReport, RunStatus), MachineError> {
        let max_in = self.nodes.iter().map(|s| s.ins.len()).max().unwrap_or(0);
        let max_out = self.nodes.iter().map(|s| s.outs.len()).max().unwrap_or(0);
        // Reusable budget buffers: refreshed per step, never reallocated.
        let mut ib = vec![PortBudget::UNLIMITED; max_in];
        let mut ob = vec![PortBudget::UNLIMITED; max_out];
        let mut events = IoEvents::default();
        let mut report = ExecReport::default();

        // Generation-structured worklist: `current` is drained while wakes
        // accumulate in `next`; one drain ≈ one dense round for the livelock
        // cap. `queued` dedups membership across both queues. The buffers
        // live in `resume` (empty and all-false at quiescence, so a paused
        // run can hand them straight back).
        self.seed_resume(topo, resume);
        let ResumeState {
            current,
            next,
            queued,
            ..
        } = resume;

        while !current.is_empty() {
            if report.rounds >= max_rounds {
                return Err(MachineError::new(format!(
                    "no quiescence after {max_rounds} rounds (livelock or huge workload)"
                )));
            }
            report.rounds += 1;
            report.peak_ready = report.peak_ready.max(current.len() as u64);
            obs.round(current.len() as u64);
            while let Some(i) = current.pop_front() {
                let idx = i as usize;
                queued[idx] = false;
                let n_in = self.nodes[idx].ins.len();
                let n_out = self.nodes[idx].outs.len();
                for b in &mut ib[..n_in] {
                    *b = PortBudget::UNLIMITED;
                }
                for b in &mut ob[..n_out] {
                    *b = PortBudget::UNLIMITED;
                }
                let allocs_before = self.mem.alloc_push_ops();
                report.steps += 1;
                let progressed = self.step_node_traced(
                    NodeId(i),
                    &mut ib[..n_in],
                    &mut ob[..n_out],
                    &mut events,
                )?;
                if progressed {
                    report.productive_steps += 1;
                }
                obs.node_dispatch(i, progressed);
                if !progressed && obs.is_enabled() {
                    obs.stall(i, self.classify_stall(NodeId(i)));
                }
                let wake = |id: NodeId,
                            cause: WakeCause,
                            next: &mut VecDeque<u32>,
                            queued: &mut Vec<bool>| {
                    if !queued[id.0 as usize] {
                        queued[id.0 as usize] = true;
                        next.push_back(id.0);
                        obs.wake(id.0, cause);
                    }
                };
                for &c in &events.pushed {
                    obs.channel_push(c.0);
                    for &w in topo.consumers(c) {
                        wake(w, WakeCause::TokenArrival, next, queued);
                    }
                }
                for &c in &events.freed {
                    for &w in topo.producers(c) {
                        wake(w, WakeCause::CapacityRelease, next, queued);
                    }
                }
                if self.mem.alloc_push_ops() != allocs_before {
                    for &w in topo.alloc_waiters() {
                        wake(w, WakeCause::AllocatorPush, next, queued);
                    }
                }
            }
            std::mem::swap(current, next);
        }
        // Quiescent: every channel with a consumer should be drained. Under
        // suspension that is a pause (more input may arrive); one-shot runs
        // report it as a deadlock.
        let stuck = self.stuck_channel_report(topo);
        if stuck.is_empty() {
            return Ok((report, RunStatus::Finished));
        }
        if suspend_at_quiescence {
            return Ok((report, RunStatus::Paused));
        }
        Err(MachineError::new(format!(
            "deadlock at quiescence: {}",
            stuck.join("; ")
        )))
    }

    /// Runs the graph untimed through a prebuilt execution plan
    /// ([`crate::ExecPlan`]) — the flattened, fused fast path. Semantically
    /// equivalent to [`Graph::run_untimed`]; the plan must have been built
    /// from a graph with this wiring.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::run_untimed`], plus a shape-mismatch error when the
    /// plan was built for different wiring.
    pub fn run_untimed_planned(
        &mut self,
        plan: &crate::ExecPlan,
        max_rounds: u64,
    ) -> Result<ExecReport, MachineError> {
        plan.run(self, max_rounds)
    }

    /// [`Graph::run_untimed_planned`] with an observability sink (see
    /// [`Graph::run_untimed_obs`]).
    ///
    /// # Errors
    ///
    /// Same as [`Graph::run_untimed_planned`].
    pub fn run_untimed_planned_obs(
        &mut self,
        plan: &crate::ExecPlan,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<ExecReport, MachineError> {
        plan.run_obs(self, max_rounds, obs)
    }

    /// [`Graph::run_untimed_planned`] in suspend-at-quiescence mode — the
    /// plan-executor twin of [`Graph::run_untimed_resumable`]. The same
    /// `resume` state drives either executor's seeding (a session picks
    /// one executor and sticks with it).
    ///
    /// # Errors
    ///
    /// Same as [`Graph::run_untimed_resumable`], plus a shape-mismatch
    /// error when the plan was built for different wiring.
    pub fn run_untimed_planned_resumable(
        &mut self,
        plan: &crate::ExecPlan,
        resume: &mut ResumeState,
        max_rounds: u64,
    ) -> Result<(ExecReport, RunStatus), MachineError> {
        plan.run_resumable_obs(self, resume, max_rounds, ObsSink::noop())
    }

    /// [`Graph::run_untimed_planned_resumable`] with an observability
    /// sink.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::run_untimed_planned_resumable`].
    pub fn run_untimed_planned_resumable_obs(
        &mut self,
        plan: &crate::ExecPlan,
        resume: &mut ResumeState,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<(ExecReport, RunStatus), MachineError> {
        plan.run_resumable_obs(self, resume, max_rounds, obs)
    }

    /// The retained dense-sweep reference executor: every round steps every
    /// node until a whole round makes no progress. Semantically equivalent
    /// to [`Graph::run_untimed`] (the property suite pins this); kept for
    /// equivalence testing and as the scheduler-overhead baseline in the
    /// executor benchmark.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::run_untimed`].
    pub fn run_untimed_dense(&mut self, max_rounds: u64) -> Result<ExecReport, MachineError> {
        self.run_with_topology(|g, topo| g.run_untimed_dense_inner(topo, max_rounds))
    }

    fn run_untimed_dense_inner(
        &mut self,
        topo: &TopologyIndex,
        max_rounds: u64,
    ) -> Result<ExecReport, MachineError> {
        let n = self.nodes.len();
        let max_in = self.nodes.iter().map(|s| s.ins.len()).max().unwrap_or(0);
        let max_out = self.nodes.iter().map(|s| s.outs.len()).max().unwrap_or(0);
        let mut ib = vec![PortBudget::UNLIMITED; max_in];
        let mut ob = vec![PortBudget::UNLIMITED; max_out];
        let mut report = ExecReport::default();
        loop {
            if report.rounds >= max_rounds {
                return Err(MachineError::new(format!(
                    "no quiescence after {max_rounds} rounds (livelock or huge workload)"
                )));
            }
            report.rounds += 1;
            // Every node is "ready" in a dense sweep; the watermark is the
            // node count as soon as any round runs.
            report.peak_ready = report.peak_ready.max(n as u64);
            let mut any = false;
            for i in 0..n {
                let n_in = self.nodes[i].ins.len();
                let n_out = self.nodes[i].outs.len();
                for b in &mut ib[..n_in] {
                    *b = PortBudget::UNLIMITED;
                }
                for b in &mut ob[..n_out] {
                    *b = PortBudget::UNLIMITED;
                }
                report.steps += 1;
                if self.step_node(NodeId(i as u32), &mut ib[..n_in], &mut ob[..n_out])? {
                    any = true;
                    report.productive_steps += 1;
                }
            }
            if !any {
                break;
            }
        }
        let stuck = self.stuck_channel_report(topo);
        if !stuck.is_empty() {
            return Err(MachineError::new(format!(
                "deadlock at quiescence: {}",
                stuck.join("; ")
            )));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, EwInstr, Operand};
    use crate::nodes::{EwNode, OutputSpec, SinkNode, SourceNode};
    use crate::tuple::{tbar, tdata};

    #[test]
    fn pipeline_source_ew_sink() {
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([4u32]), tbar(1)])),
            vec![],
            vec![c0],
        );
        g.add_node(
            "double",
            Box::new(EwNode::new(
                1,
                vec![EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(0),
                    b: Operand::Reg(0),
                    dst: 1,
                }],
                vec![OutputSpec::plain([1])],
            )),
            vec![c0],
            vec![c1],
        );
        let (sink, handle) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c1], vec![]);
        let report = g.run_untimed(100).unwrap();
        assert!(report.productive_steps >= 3);
        assert_eq!(handle.tokens(), vec![tdata([8u32]), tbar(1)]);
    }

    #[test]
    fn deadlock_detected() {
        // A consumer that needs two inputs but only one is fed.
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        let c2 = g.add_chan(Channel::new(2));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([1u32])])),
            vec![],
            vec![c0],
        );
        // c1 never receives anything.
        g.add_node(
            "zip",
            Box::new(EwNode::passthrough(2)),
            vec![c0, c1],
            vec![c2],
        );
        let (sink, _h) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c2], vec![]);
        let err = g.run_untimed(100).unwrap_err();
        assert!(err.message.contains("deadlock"), "got: {err}");
    }

    #[test]
    fn round_limit_reported() {
        // An endless loop: counter feeding itself through fork is hard to
        // build by accident; emulate livelock by a source with huge output
        // and a tiny round cap.
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1).with_capacity(1));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([1u32]), tdata([2u32])])),
            vec![],
            vec![c0],
        );
        // No consumer: source can push one token then stalls forever; with
        // max_rounds=0 we hit the cap immediately.
        let err = g.run_untimed(0).unwrap_err();
        assert!(err.message.contains("no quiescence"), "got: {err}");
    }

    #[test]
    fn reentrant_step_is_an_error_not_a_panic() {
        // A node whose behavior steps the node again through nothing — we
        // emulate the checked-out state by taking the behavior out directly.
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let id = g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([1u32])])),
            vec![],
            vec![c0],
        );
        g.nodes[id.0 as usize].behavior = None; // simulate mid-step state
        let mut ib: Vec<PortBudget> = vec![];
        let mut ob = vec![PortBudget::UNLIMITED];
        let err = g.step_node(id, &mut ib, &mut ob).unwrap_err();
        assert!(err.message.contains("reentrant step"), "got: {err}");
        assert_eq!(err.node.as_deref(), Some("src"));
    }

    #[test]
    fn deadlock_reports_all_stuck_channels() {
        // Two independent starved zips: the diagnosis must list both, with
        // their consumer labels, in one pass.
        let mut g = Graph::new();
        let starve = |g: &mut Graph, tag: &str| {
            let c0 = g.add_chan(Channel::new(1));
            let c1 = g.add_chan(Channel::new(1));
            let c2 = g.add_chan(Channel::new(2));
            g.add_node(
                format!("src.{tag}"),
                Box::new(SourceNode::new(vec![tdata([1u32])])),
                vec![],
                vec![c0],
            );
            g.add_node(
                format!("zip.{tag}"),
                Box::new(EwNode::passthrough(2)),
                vec![c0, c1],
                vec![c2],
            );
            let (sink, _h) = SinkNode::new();
            g.add_node(format!("sink.{tag}"), Box::new(sink), vec![c2], vec![]);
        };
        starve(&mut g, "a");
        starve(&mut g, "b");
        let err = g.run_untimed(100).unwrap_err();
        assert!(err.message.contains("deadlock"), "got: {err}");
        assert!(err.message.contains("zip.a"), "got: {err}");
        assert!(err.message.contains("zip.b"), "got: {err}");
    }

    #[test]
    fn ready_set_does_less_work_than_dense() {
        // A long pipeline: the dense sweep re-steps every node every round;
        // the ready set only steps woken nodes.
        let build = || {
            let mut g = Graph::new();
            let mut prev = g.add_chan(Channel::new(1));
            let toks: Vec<_> = (0..16u32).map(|i| tdata([i])).chain([tbar(1)]).collect();
            g.add_node("src", Box::new(SourceNode::new(toks)), vec![], vec![prev]);
            for i in 0..24 {
                let next = g.add_chan(Channel::new(1));
                g.add_node(
                    format!("stage{i}"),
                    Box::new(EwNode::passthrough(1)),
                    vec![prev],
                    vec![next],
                );
                prev = next;
            }
            let (sink, handle) = SinkNode::new();
            g.add_node("sink", Box::new(sink), vec![prev], vec![]);
            (g, handle)
        };
        let (mut dense_g, dense_h) = build();
        let dense = dense_g.run_untimed_dense(10_000).unwrap();
        let (mut ready_g, ready_h) = build();
        let ready = ready_g.run_untimed(10_000).unwrap();
        assert_eq!(dense_h.tokens(), ready_h.tokens());
        assert!(
            ready.steps < dense.steps,
            "ready {} !< dense {}",
            ready.steps,
            dense.steps
        );
        assert!(ready.productive_ratio() > dense.productive_ratio());
    }

    #[test]
    fn graph_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
        assert_send_sync::<TopologyIndex>();
        assert_send_sync::<ExecReport>();
    }

    #[test]
    fn fresh_instance_runs_independently_with_fresh_sinks() {
        // One finished graph, three instances: each run collects into its
        // own sink buffer and mutates its own memory; the original graph is
        // untouched and the topology Arc is shared, not rebuilt.
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([21u32]), tbar(1)])),
            vec![],
            vec![c0],
        );
        g.add_node(
            "double",
            Box::new(EwNode::new(
                1,
                vec![EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(0),
                    b: Operand::Reg(0),
                    dst: 1,
                }],
                vec![OutputSpec::plain([1])],
            )),
            vec![c0],
            vec![c1],
        );
        let (sink, template_handle) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c1], vec![]);
        g.finalize_topology();

        let mut handles = Vec::new();
        for _ in 0..3 {
            let mut inst = g.fresh_instance();
            assert!(
                std::ptr::eq(g.topology().unwrap(), inst.topology().unwrap()),
                "instances must share the topology Arc"
            );
            inst.run_untimed(1_000).unwrap();
            let h = inst
                .nodes()
                .iter()
                .find_map(|s| s.behavior.as_ref().unwrap().sink_handle())
                .expect("instance has a sink");
            handles.push(h);
        }
        for h in &handles {
            assert_eq!(h.tokens(), vec![tdata([42u32]), tbar(1)]);
        }
        // The template graph never ran: its source still holds tokens and
        // its sink collected nothing.
        assert!(template_handle.is_empty());
        assert_eq!(g.chans()[0].len(), 0);
        let report = g.run_untimed(1_000).unwrap();
        assert!(report.productive_steps > 0, "template still runnable");
        assert_eq!(template_handle.tokens(), vec![tdata([42u32]), tbar(1)]);
    }

    #[test]
    fn exec_report_merge_sums_counters_and_maxes_watermarks() {
        let mut a = ExecReport {
            rounds: 2,
            productive_steps: 5,
            steps: 8,
            peak_ready: 6,
        };
        let b = ExecReport {
            rounds: 1,
            productive_steps: 3,
            steps: 4,
            peak_ready: 9,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ExecReport {
                rounds: 3,
                productive_steps: 8,
                steps: 12,
                peak_ready: 9,
            }
        );
        // Merging the other way keeps the same watermark: max, not sum.
        let mut c = ExecReport {
            peak_ready: 9,
            ..ExecReport::default()
        };
        c.merge(&ExecReport {
            peak_ready: 6,
            ..ExecReport::default()
        });
        assert_eq!(c.peak_ready, 9);
    }

    #[test]
    fn executors_record_the_peak_ready_watermark() {
        let build = || {
            let mut g = Graph::new();
            let c0 = g.add_chan(Channel::new(1));
            let c1 = g.add_chan(Channel::new(1));
            g.add_node(
                "src",
                Box::new(SourceNode::new(vec![tdata([4u32]), tbar(1)])),
                vec![],
                vec![c0],
            );
            g.add_node(
                "stage",
                Box::new(EwNode::passthrough(1)),
                vec![c0],
                vec![c1],
            );
            let (sink, _h) = SinkNode::new();
            g.add_node("sink", Box::new(sink), vec![c1], vec![]);
            g
        };
        let ready = build().run_untimed(1_000).unwrap();
        // Round 0 seeds every node, so the watermark starts at node count.
        assert_eq!(ready.peak_ready, 3);
        let dense = build().run_untimed_dense(1_000).unwrap();
        assert_eq!(dense.peak_ready, 3);
    }

    #[test]
    fn obs_dispatch_count_matches_report_steps() {
        let obs = revet_obs::ObsSink::with_trace_capacity(4096);
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([4u32]), tbar(1)])),
            vec![],
            vec![c0],
        );
        g.add_node(
            "stage",
            Box::new(EwNode::passthrough(1)),
            vec![c0],
            vec![c1],
        );
        let (sink, _h) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c1], vec![]);
        let report = g.run_untimed_obs(1_000, &obs).unwrap();
        assert_eq!(obs.counters.dispatches.get(), report.steps);
        assert_eq!(obs.counters.productive.get(), report.productive_steps);
        assert_eq!(obs.counters.rounds.get(), report.rounds);
        assert_eq!(obs.counters.peak_ready.get(), report.peak_ready);
        let traced = obs
            .trace_events()
            .iter()
            .filter(|e| matches!(e.kind, revet_obs::EventKind::NodeDispatch { .. }))
            .count() as u64;
        assert_eq!(traced, report.steps);
    }

    #[test]
    fn topology_index_invalidated_by_rewiring() {
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        g.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([1u32])])),
            vec![],
            vec![c0],
        );
        g.finalize_topology();
        assert!(g.topology().is_some());
        let c1 = g.add_chan(Channel::new(1));
        assert!(g.topology().is_none(), "add_chan must invalidate");
        let (sink, _h) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c0], vec![]);
        let topo = g.finalize_topology();
        assert_eq!(topo.consumers(c0).len(), 1);
        assert_eq!(topo.producers(c0).len(), 1);
        assert!(topo.consumers(c1).is_empty());
    }

    /// src → double → sink with an initially empty source; `feed` tells the
    /// test which node to feed chunks into.
    fn streaming_pipeline() -> (Graph, NodeId, crate::nodes::SinkHandle) {
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        let src = g.add_node(
            "src",
            Box::new(SourceNode::new(Vec::new())),
            vec![],
            vec![c0],
        );
        g.add_node(
            "double",
            Box::new(EwNode::new(
                1,
                vec![EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(0),
                    b: Operand::Reg(0),
                    dst: 1,
                }],
                vec![OutputSpec::plain([1])],
            )),
            vec![c0],
            vec![c1],
        );
        let (sink, handle) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c1], vec![]);
        (g, src, handle)
    }

    #[test]
    fn resumable_interpreter_chunked_feed_matches_one_shot() {
        // One-shot reference: all input up front.
        let (mut one, src, oh) = streaming_pipeline();
        one.feed_source(src, vec![tdata([1u32]), tbar(1), tdata([2u32]), tbar(1)])
            .unwrap();
        one.run_untimed(1_000).unwrap();

        // Chunked: feed one argset, run, feed the next, run again.
        let (mut g, src, handle) = streaming_pipeline();
        let mut resume = ResumeState::new();
        let (_, s) = g.run_untimed_resumable(&mut resume, 1_000).unwrap();
        assert_eq!(s, RunStatus::Finished, "empty stream drains cleanly");
        g.feed_source(src, vec![tdata([1u32]), tbar(1)]).unwrap();
        let (r1, s) = g.run_untimed_resumable(&mut resume, 1_000).unwrap();
        assert_eq!(s, RunStatus::Finished);
        assert_eq!(handle.tokens(), vec![tdata([2u32]), tbar(1)]);
        g.feed_source(src, vec![tdata([2u32]), tbar(1)]).unwrap();
        let (r2, s) = g.run_untimed_resumable(&mut resume, 1_000).unwrap();
        assert_eq!(s, RunStatus::Finished);
        assert_eq!(handle.tokens(), oh.tokens(), "chunked ≡ one-shot sink");
        // The second poll's delta is readable through the cursor view.
        assert_eq!(handle.tokens_from(2), vec![tdata([4u32]), tbar(1)]);
        assert!(handle.tokens_from(99).is_empty());
        let mut merged = r1;
        merged.merge(&r2);
        assert_eq!(merged.steps, r1.steps + r2.steps);
    }

    #[test]
    fn resumable_run_pauses_on_stuck_tokens_instead_of_deadlocking() {
        // A zip starved on one input: one-shot reports deadlock; the
        // resumable run pauses, and feeding the missing side finishes it.
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let c1 = g.add_chan(Channel::new(1));
        let c2 = g.add_chan(Channel::new(2));
        g.add_node(
            "src.a",
            Box::new(SourceNode::new(vec![tdata([1u32])])),
            vec![],
            vec![c0],
        );
        let src_b = g.add_node(
            "src.b",
            Box::new(SourceNode::new(Vec::new())),
            vec![],
            vec![c1],
        );
        g.add_node(
            "zip",
            Box::new(EwNode::passthrough(2)),
            vec![c0, c1],
            vec![c2],
        );
        let (sink, handle) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![c2], vec![]);
        let mut resume = ResumeState::new();
        let (_, s) = g.run_untimed_resumable(&mut resume, 1_000).unwrap();
        assert_eq!(s, RunStatus::Paused, "stuck token pauses, not deadlocks");
        assert!(g.resident_bytes() > 0, "paused state holds resident tokens");
        g.feed_source(src_b, vec![tdata([2u32])]).unwrap();
        let (_, s) = g.run_untimed_resumable(&mut resume, 1_000).unwrap();
        assert_eq!(s, RunStatus::Finished);
        assert_eq!(handle.tokens(), vec![tdata([1u32, 2u32])]);
    }

    #[test]
    fn resumable_planned_chunked_feed_matches_one_shot() {
        let (mut one, src, oh) = streaming_pipeline();
        one.feed_source(src, vec![tdata([3u32]), tbar(1), tdata([5u32]), tbar(1)])
            .unwrap();
        let plan = crate::ExecPlan::build(&one);
        one.run_untimed_planned(&plan, 1_000).unwrap();

        let (mut g, src, handle) = streaming_pipeline();
        let plan = crate::ExecPlan::build(&g);
        let mut resume = ResumeState::new();
        g.feed_source(src, vec![tdata([3u32]), tbar(1)]).unwrap();
        let (r1, s) = g
            .run_untimed_planned_resumable(&plan, &mut resume, 1_000)
            .unwrap();
        assert_eq!(s, RunStatus::Finished);
        assert_eq!(handle.tokens(), vec![tdata([6u32]), tbar(1)]);
        g.feed_source(src, vec![tdata([5u32]), tbar(1)]).unwrap();
        let (r2, s) = g
            .run_untimed_planned_resumable(&plan, &mut resume, 1_000)
            .unwrap();
        assert_eq!(s, RunStatus::Finished);
        assert_eq!(handle.tokens(), oh.tokens(), "chunked ≡ one-shot (planned)");
        assert!(r1.steps > 0 && r2.steps > 0);
    }

    #[test]
    fn feed_source_rejects_non_source_nodes() {
        let mut g = Graph::new();
        let c0 = g.add_chan(Channel::new(1));
        let (sink, _h) = SinkNode::new();
        let id = g.add_node("sink", Box::new(sink), vec![c0], vec![]);
        let err = g.feed_source(id, vec![tdata([1u32])]).unwrap_err();
        assert!(err.message.contains("cannot feed"), "got: {err}");
        assert_eq!(err.node.as_deref(), Some("sink"));
    }

    #[test]
    fn resident_bytes_tracks_queued_and_pending_tokens() {
        let (mut g, src, _handle) = streaming_pipeline();
        assert_eq!(g.resident_bytes(), 0, "empty stream holds nothing");
        g.feed_source(src, vec![tdata([7u32]), tbar(1)]).unwrap();
        let pending = g.resident_bytes();
        assert!(pending > 0, "fed tokens are resident in the source");
        let mut resume = ResumeState::new();
        g.run_untimed_resumable(&mut resume, 1_000).unwrap();
        // Tokens moved to the sink buffer; still resident in the session.
        assert!(g.resident_bytes() > 0);
    }
}
