//! The streaming-node abstraction and its I/O surface.
//!
//! Every §III-B primitive is a [`Node`]: a small state machine that, when
//! stepped, consumes tokens from its input channels and produces tokens on
//! its output channels. Nodes are written in *check-then-commit* style — they
//! verify output room (and allocator availability) **before** consuming
//! inputs — so the same implementations run correctly under the untimed
//! executor (unbounded channels) and the cycle-level simulator (bounded
//! channels and per-cycle port budgets).

use crate::channel::Channel;
use crate::instr::EwInstr;
use crate::mem::MemoryState;
use crate::nodes::{OutputSpec, SinkHandle};
use crate::tuple::TTok;
use core::fmt;

/// Identifies a channel within a [`crate::Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ChanId(pub u32);

/// Identifies a node within a [`crate::Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// An error raised by a node or the executor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineError {
    /// The node that raised the error, if known.
    pub node: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl MachineError {
    /// Creates an error with no node attribution (the executor fills it in).
    pub fn new(message: impl Into<String>) -> Self {
        MachineError {
            node: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.node {
            Some(n) => write!(f, "machine error at node '{}': {}", n, self.message),
            None => write!(f, "machine error: {}", self.message),
        }
    }
}

impl std::error::Error for MachineError {}

/// Per-port token budgets used by the timed simulator to model link
/// bandwidth (§III-C: a vector link moves ≤16 data elements and ≤1 barrier
/// per cycle; a scalar link ≤1 and ≤1).
#[derive(Clone, Copy, Debug)]
pub struct PortBudget {
    /// Remaining data tokens this step.
    pub data: usize,
    /// Remaining barrier tokens this step.
    pub barrier: usize,
}

impl PortBudget {
    /// An effectively unlimited budget (untimed execution).
    pub const UNLIMITED: PortBudget = PortBudget {
        data: usize::MAX,
        barrier: usize::MAX,
    };

    fn take(&mut self, is_barrier: bool) {
        if is_barrier {
            self.barrier -= 1;
        } else {
            self.data -= 1;
        }
    }

    fn allows(&self, is_barrier: bool) -> bool {
        if is_barrier {
            self.barrier > 0
        } else {
            self.data > 0
        }
    }
}

/// Channel events recorded while a node steps, consumed by event-driven
/// executors to maintain their ready sets.
///
/// The buffers are owned by the executor and reused across steps (call
/// [`IoEvents::clear`] between steps); entries may repeat when a node moves
/// several tokens over the same channel — executors dedup via their own
/// queued-flags, so recording stays allocation-free on the hot path.
#[derive(Debug, Default)]
pub struct IoEvents {
    /// Channels that gained at least one token (wake the consumer).
    pub pushed: Vec<ChanId>,
    /// Bounded channels that transitioned from full to having room (wake the
    /// producer — back-pressure release). Unbounded channels never appear.
    pub freed: Vec<ChanId>,
}

impl IoEvents {
    /// Empties both buffers, keeping their allocations.
    pub fn clear(&mut self) {
        self.pushed.clear();
        self.freed.clear();
    }
}

/// The I/O surface a node sees while stepping: its input/output channels
/// (resolved through the graph's channel table), shared memory state, and
/// per-port budgets.
pub struct NodeIo<'a> {
    chans: &'a mut [Channel],
    ins: &'a [ChanId],
    outs: &'a [ChanId],
    mem: &'a mut MemoryState,
    in_budget: &'a mut [PortBudget],
    out_budget: &'a mut [PortBudget],
    progressed: bool,
    events: Option<&'a mut IoEvents>,
}

impl fmt::Debug for NodeIo<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeIo")
            .field("ins", &self.ins)
            .field("outs", &self.outs)
            .finish_non_exhaustive()
    }
}

impl<'a> NodeIo<'a> {
    /// Assembles an I/O view. Used by executors; nodes only consume it.
    pub fn new(
        chans: &'a mut [Channel],
        ins: &'a [ChanId],
        outs: &'a [ChanId],
        mem: &'a mut MemoryState,
        in_budget: &'a mut [PortBudget],
        out_budget: &'a mut [PortBudget],
    ) -> Self {
        debug_assert_eq!(ins.len(), in_budget.len());
        debug_assert_eq!(outs.len(), out_budget.len());
        NodeIo {
            chans,
            ins,
            outs,
            mem,
            in_budget,
            out_budget,
            progressed: false,
            events: None,
        }
    }

    /// Attaches an event sink recording which channels gained tokens or
    /// regained capacity during this step (ready-set scheduling).
    pub fn with_events(mut self, events: &'a mut IoEvents) -> Self {
        self.events = Some(events);
        self
    }

    /// Number of input ports.
    pub fn in_count(&self) -> usize {
        self.ins.len()
    }

    /// Number of output ports.
    pub fn out_count(&self) -> usize {
        self.outs.len()
    }

    /// Peeks the front token of input `i`, or `None` if the channel is empty
    /// or the port budget for that token kind is exhausted.
    pub fn peek_in(&self, i: usize) -> Option<&TTok> {
        let tok = self.chans[self.ins[i].0 as usize].front()?;
        if self.in_budget[i].allows(tok.is_barrier()) {
            Some(tok)
        } else {
            None
        }
    }

    /// Pops the front token of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if [`NodeIo::peek_in`] would return `None` (nodes must check
    /// first — this is check-then-commit discipline, not input validation).
    pub fn pop_in(&mut self, i: usize) -> TTok {
        let chan = &mut self.chans[self.ins[i].0 as usize];
        let was_full = chan.room() == 0;
        let tok = chan.pop().expect("pop_in on empty channel");
        if was_full {
            if let Some(ev) = self.events.as_deref_mut() {
                ev.freed.push(self.ins[i]);
            }
        }
        self.in_budget[i].take(tok.is_barrier());
        self.progressed = true;
        tok
    }

    /// True if output `o` can accept a token of the given kind (room in the
    /// channel and port budget remaining).
    pub fn can_push(&self, o: usize, barrier: bool) -> bool {
        self.chans[self.outs[o].0 as usize].room() > 0 && self.out_budget[o].allows(barrier)
    }

    /// Pushes a token on output `o`.
    ///
    /// # Panics
    ///
    /// Panics if [`NodeIo::can_push`] is false for this token kind.
    pub fn push(&mut self, o: usize, tok: TTok) {
        assert!(
            self.can_push(o, tok.is_barrier()),
            "push without can_push check on output {o}"
        );
        self.out_budget[o].take(tok.is_barrier());
        self.chans[self.outs[o].0 as usize].push(tok);
        if let Some(ev) = self.events.as_deref_mut() {
            ev.pushed.push(self.outs[o]);
        }
        self.progressed = true;
    }

    /// The shared memory state (DRAM, SRAM regions, allocator queues).
    pub fn mem(&mut self) -> &mut MemoryState {
        self.mem
    }

    /// Read-only memory access (stall checks).
    pub fn mem_ref(&self) -> &MemoryState {
        self.mem
    }

    /// Whether any pop/push happened through this view.
    pub fn progressed(&self) -> bool {
        self.progressed
    }

    /// Tuple arity of input port `i` (from its channel).
    pub fn in_arity(&self, i: usize) -> usize {
        self.chans[self.ins[i].0 as usize].arity
    }
}

/// A streaming primitive (§III-B). Implementations must:
///
/// 1. pass every incoming barrier through exactly once, in order, and
/// 2. never reorder data across barriers (reordering between barriers is
///    allowed),
///
/// the two SLTF composability conditions.
///
/// Nodes are `Send + Sync` so a finished [`crate::Graph`] can be shared
/// immutably across threads (the batch runtime instantiates one compiled
/// program many times from a shared reference) and instances can migrate
/// onto worker threads.
pub trait Node: fmt::Debug + Send + Sync {
    /// Advances the node as far as budgets, inputs, and output room allow.
    /// Returns `Ok(true)` iff any token moved.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] on protocol violations (structure-mismatched
    /// zip inputs, barrier overflow past Ω15, data on a barrier-free link…),
    /// which indicate compiler bugs rather than recoverable conditions.
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError>;

    /// A short static kind name ("ew", "fwd-merge", …) for reports.
    fn kind(&self) -> &'static str;

    /// True if this node can stall on allocator-queue availability (§V-B a
    /// blocking pops). Event-driven executors re-wake such nodes whenever
    /// any node returns a pointer to an allocator, since that state change
    /// is invisible on the channel network.
    fn may_stall_on_alloc(&self) -> bool {
        false
    }

    /// Clones this node's behavior into a fresh boxed instance, so one
    /// compiled graph can be instantiated many times
    /// ([`crate::Graph::fresh_instance`]). Ordinary primitives copy their
    /// state verbatim; result-collecting endpoints
    /// ([`crate::nodes::SinkNode`]) allocate a fresh, empty collection
    /// buffer instead of sharing the original's.
    fn clone_node(&self) -> Box<dyn Node>;

    /// The handle to this node's collected output, for result-collecting
    /// endpoints ([`crate::nodes::SinkNode`]); `None` for every other
    /// primitive. Lets an instantiated graph surface its own sink handle
    /// without downcasting.
    fn sink_handle(&self) -> Option<SinkHandle> {
        None
    }

    /// A data-only description of this node's behavior that the execution
    /// plan ([`crate::ExecPlan`]) can lower onto its fused fast path;
    /// `None` (the default) keeps the node on the boxed `step` fallback.
    ///
    /// Returning `Some` is a contract: executing the returned spec against
    /// the node's channels must be **observably identical** to calling
    /// [`Node::step`] — same tokens, same order, same memory effects, same
    /// errors. The plan builder applies its own additional eligibility
    /// checks (allocator stalls, channel bounds) before committing a node
    /// to the fused path, so implementations only describe behavior, never
    /// scheduling.
    fn fused_spec(&self) -> Option<FusedSpec> {
        None
    }

    /// Appends tokens to this node's internal pending-input queue —
    /// streaming sessions feed resident instances through their source
    /// nodes this way ([`crate::Graph::feed_source`]). Only input
    /// endpoints ([`crate::nodes::SourceNode`]) accept tokens; the default
    /// rejects the feed.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] when the node holds no appendable input
    /// queue (every non-source primitive).
    fn feed_tokens(&mut self, _tokens: Vec<TTok>) -> Result<(), MachineError> {
        Err(MachineError::new(format!(
            "cannot feed tokens into a '{}' node (only sources accept appended input)",
            self.kind()
        )))
    }

    /// Number of tokens queued in this node's *internal* state awaiting
    /// injection — nonzero only for input endpoints holding unemitted
    /// tokens. Resumable executors re-seed such nodes when a paused run
    /// restarts, since internal state is invisible on the channel network.
    fn pending_input_tokens(&self) -> usize {
        0
    }

    /// Approximate heap bytes retained by this node's internal state
    /// (pending source tokens, collected sink tokens, …). Per-session
    /// memory accounting for resident streaming instances; `0` for
    /// stateless primitives.
    fn resident_bytes(&self) -> usize {
        0
    }
}

/// Approximate resident heap bytes of one queued token (accounting helper
/// shared by channels and endpoint nodes).
pub(crate) fn token_bytes(tok: &TTok) -> usize {
    let payload = match tok {
        revet_sltf::Tok::Data(vals) => std::mem::size_of_val(vals.as_slice()),
        revet_sltf::Tok::Barrier(_) => 0,
    };
    std::mem::size_of::<TTok>() + payload
}

/// A node behavior lowered to plan-executable data (see
/// [`Node::fused_spec`]).
#[derive(Clone, Debug)]
pub enum FusedSpec {
    /// An element-wise pipeline stage: straight-line instructions over a
    /// per-thread register file, then per-port output specs.
    Ew {
        /// The straight-line program (indices into the plan's micro arena
        /// after flattening).
        instrs: Vec<EwInstr>,
        /// One spec per output port.
        outputs: Vec<OutputSpec>,
        /// Register-file size.
        reg_count: u16,
    },
    /// A result-collecting sink: drain input 0 into the sink handle.
    Sink,
}
