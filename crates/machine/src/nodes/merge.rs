//! Merge primitives: forward merge (§III-B c) and forward-backward merge
//! (§III-B d).
//!
//! Forward merging joins the two forward branches of an `if` statement:
//! data is interleaved eagerly; when a barrier appears on one input, that
//! input stalls until an equal barrier appears on the other, then a single
//! barrier is forwarded. Because upstream filters duplicate every barrier to
//! both branches, the two inputs carry the *same* barrier structure — modulo
//! canonical implied-barrier elision, which the merge realigns.
//!
//! Forward-backward merging is the `while`-loop header. It raises incoming
//! barriers one level to reserve Ω1 for wave tracking: it emits the loop
//! body's threads in waves terminated by Ω1, echoes returning Ω1s, and
//! declares the loop drained when the backedge yields two Ω1 tokens in a row
//! with no intervening data — at which point the held forward barrier is
//! forwarded one level higher. Unlike Aurochs's timeout scheme, this is
//! exact for arbitrarily long (and nested) loop bodies.

use crate::node::{MachineError, Node, NodeIo};
use revet_sltf::Tok;

/// Forward merge: combines two forward branches into one stream.
#[derive(Clone, Debug, Default)]
pub struct FwdMergeNode {
    _priv: (),
}

impl FwdMergeNode {
    /// Creates a forward merge.
    pub fn new() -> Self {
        FwdMergeNode::default()
    }
}

impl Node for FwdMergeNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        assert_eq!(io.in_count(), 2, "forward merge has exactly two inputs");
        let mut progressed = false;
        loop {
            let f0 = io.peek_in(0).cloned();
            let f1 = io.peek_in(1).cloned();
            match (f0, f1) {
                // Eager data pass-through from either side.
                (Some(Tok::Data(_)), _) if io.can_push(0, false) => {
                    let t = io.pop_in(0);
                    io.push(0, t);
                    progressed = true;
                }
                (_, Some(Tok::Data(_))) if io.can_push(0, false) => {
                    let t = io.pop_in(1);
                    io.push(0, t);
                    progressed = true;
                }
                // Both fronts are barriers: emit the lower level once; pop
                // the side(s) carrying exactly that level (the other side's
                // higher barrier subsumes an implied copy).
                (Some(Tok::Barrier(a)), Some(Tok::Barrier(b))) => {
                    if !io.can_push(0, true) {
                        break;
                    }
                    let level = a.min(b);
                    if a == level {
                        io.pop_in(0);
                    }
                    if b == level {
                        io.pop_in(1);
                    }
                    io.push(0, Tok::Barrier(level));
                    progressed = true;
                }
                // A lone barrier stalls its link until the other side speaks.
                _ => break,
            }
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "fwd-merge"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
}

/// The phase of a forward-backward merge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FbPhase {
    /// Admitting new threads from the forward branch.
    Forward,
    /// Forward branch stalled at a barrier; circulating the loop body.
    Draining,
}

/// Forward-backward merge: the while-loop header. Input 0 is the forward
/// branch, input 1 the backedge; the single output feeds the loop body.
#[derive(Clone, Debug)]
pub struct FbMergeNode {
    phase: FbPhase,
    /// Data passed to the body since the last Ω1 this node emitted.
    wave_had_data: bool,
}

impl Default for FbMergeNode {
    fn default() -> Self {
        FbMergeNode::new()
    }
}

impl FbMergeNode {
    /// Creates a loop-header merge.
    pub fn new() -> Self {
        FbMergeNode {
            phase: FbPhase::Forward,
            wave_had_data: false,
        }
    }
}

impl Node for FbMergeNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        assert_eq!(io.in_count(), 2, "fb-merge has forward + backedge inputs");
        const FWD: usize = 0;
        const BACK: usize = 1;
        let mut progressed = false;
        loop {
            // Backedge barriers above Ω1 are echoes of barriers this node
            // emitted earlier (they circulated through the body's filters);
            // they are consumed here in both phases.
            if let Some(Tok::Barrier(l)) = io.peek_in(BACK) {
                if l.get() > 1 {
                    io.pop_in(BACK);
                    progressed = true;
                    continue;
                }
            }
            match self.phase {
                FbPhase::Forward => {
                    // Returning threads may rejoin eagerly while new threads
                    // are still being admitted.
                    if matches!(io.peek_in(BACK), Some(Tok::Data(_))) && io.can_push(0, false) {
                        let t = io.pop_in(BACK);
                        io.push(0, t);
                        self.wave_had_data = true;
                        progressed = true;
                        continue;
                    }
                    if matches!(io.peek_in(BACK), Some(Tok::Barrier(_))) {
                        // Only Ω1 reaches here (higher levels consumed above)
                        // and no Ω1 can be outstanding in Forward phase.
                        return Err(MachineError::new(
                            "fb-merge: unexpected Ω1 on backedge while admitting threads",
                        ));
                    }
                    match io.peek_in(FWD) {
                        Some(Tok::Data(_)) => {
                            if !io.can_push(0, false) {
                                break;
                            }
                            let t = io.pop_in(FWD);
                            io.push(0, t);
                            self.wave_had_data = true;
                            progressed = true;
                        }
                        Some(Tok::Barrier(_)) => {
                            // Hold the forward barrier; terminate the first
                            // wave with the reserved Ω1 and start draining.
                            if !io.can_push(0, true) {
                                break;
                            }
                            io.push(0, Tok::Barrier(revet_sltf::BarrierLevel::L1));
                            self.wave_had_data = false;
                            self.phase = FbPhase::Draining;
                            progressed = true;
                        }
                        None => break,
                    }
                }
                FbPhase::Draining => match io.peek_in(BACK) {
                    Some(Tok::Data(_)) => {
                        if !io.can_push(0, false) {
                            break;
                        }
                        let t = io.pop_in(BACK);
                        io.push(0, t);
                        self.wave_had_data = true;
                        progressed = true;
                    }
                    Some(Tok::Barrier(_)) => {
                        // Only Ω1 arrives here. Two Ω1s in a row ⇒ drained.
                        if self.wave_had_data {
                            if !io.can_push(0, true) {
                                break;
                            }
                            io.pop_in(BACK);
                            io.push(0, Tok::Barrier(revet_sltf::BarrierLevel::L1));
                            self.wave_had_data = false;
                            progressed = true;
                        } else {
                            if !io.can_push(0, true) {
                                break;
                            }
                            io.pop_in(BACK);
                            let held = io.pop_in(FWD);
                            let level = match held {
                                Tok::Barrier(l) => l,
                                Tok::Data(_) => {
                                    return Err(MachineError::new(
                                        "fb-merge: forward front changed while draining",
                                    ))
                                }
                            };
                            let raised = level.raised().ok_or_else(|| {
                                MachineError::new(format!(
                                    "fb-merge: cannot raise {level} past Ω15 — loop nest too deep"
                                ))
                            })?;
                            io.push(0, Tok::Barrier(raised));
                            self.phase = FbPhase::Forward;
                            self.wave_had_data = false;
                            progressed = true;
                        }
                    }
                    None => break,
                },
            }
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "fb-merge"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::mem::MemoryState;
    use crate::node::{ChanId, PortBudget};
    use crate::tuple::{tbar, tdata, TTok};

    fn step2to1(
        node: &mut dyn Node,
        in0: Vec<TTok>,
        in1: Vec<TTok>,
        backedge_raw: bool,
    ) -> (Vec<TTok>, Vec<TTok>, Vec<TTok>) {
        let c1 = if backedge_raw {
            Channel::new(1).without_canonicalization()
        } else {
            Channel::new(1)
        };
        let mut chans = vec![Channel::new(1), c1, Channel::new(1)];
        for t in in0 {
            chans[0].push(t);
        }
        for t in in1 {
            chans[1].push(t);
        }
        let ins = [ChanId(0), ChanId(1)];
        let outs = [ChanId(2)];
        let mut mem = MemoryState::default();
        let mut ib = vec![PortBudget::UNLIMITED; 2];
        let mut ob = vec![PortBudget::UNLIMITED; 1];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        node.step(&mut io).unwrap();
        (
            chans[0].drain_all(),
            chans[1].drain_all(),
            chans[2].drain_all(),
        )
    }

    #[test]
    fn fwd_merge_interleaves_then_syncs_barrier() {
        let mut m = FwdMergeNode::new();
        let (r0, r1, out) = step2to1(
            &mut m,
            vec![tdata([1u32]), tdata([2u32]), tbar(1)],
            vec![tdata([10u32]), tbar(1)],
            false,
        );
        assert!(r0.is_empty() && r1.is_empty());
        // All data present exactly once, single merged barrier last.
        assert_eq!(out.len(), 4);
        assert_eq!(out.last(), Some(&tbar(1)));
        let data: Vec<_> = out.iter().filter(|t| t.is_data()).cloned().collect();
        assert!(data.contains(&tdata([1u32])));
        assert!(data.contains(&tdata([2u32])));
        assert!(data.contains(&tdata([10u32])));
    }

    #[test]
    fn fwd_merge_stalls_barrier_side() {
        // Input 0 hits Ω1; input 1 still streams data. Data passes, barrier
        // waits, then merges.
        let mut m = FwdMergeNode::new();
        let (_, _, out) = step2to1(
            &mut m,
            vec![tbar(1)],
            vec![tdata([7u32]), tdata([8u32]), tbar(1)],
            false,
        );
        assert_eq!(out, vec![tdata([7u32]), tdata([8u32]), tbar(1)]);
    }

    #[test]
    fn fwd_merge_realigns_implied_barriers() {
        // Side A: x Ω2 (Ω1 implied); side B: Ω1 Ω2 (explicit, no data).
        let mut m = FwdMergeNode::new();
        let (_, _, out) = step2to1(
            &mut m,
            vec![tdata([1u32]), tbar(2)],
            vec![tbar(1), tbar(2)],
            false,
        );
        // Output (canonicalized by the channel): x Ω1 Ω2 → x Ω2? No: Ω1 is
        // emitted before Ω2 and both follow data, so the channel collapses
        // them into Ω2 alone.
        assert_eq!(out, vec![tdata([1u32]), tbar(2)]);
    }

    #[test]
    fn fwd_merge_preserves_distinct_empty_dims() {
        // Both sides: Ω1 Ω1 Ω2 ([[],[]]) must not collapse.
        let mut m = FwdMergeNode::new();
        let (_, _, out) = step2to1(
            &mut m,
            vec![tbar(1), tbar(1), tbar(2)],
            vec![tbar(1), tbar(1), tbar(2)],
            false,
        );
        assert_eq!(out, vec![tbar(1), tbar(1), tbar(2)]);
    }

    #[test]
    fn fb_merge_first_wave_and_drain() {
        // Forward: t1 t2 Ωn(=Ω1 at this nesting). Backedge initially empty.
        let mut m = FbMergeNode::new();
        let (fwd_left, _, out) = step2to1(
            &mut m,
            vec![tdata([1u32]), tdata([2u32]), tbar(1)],
            vec![],
            true,
        );
        // Wave 0 emitted, Ω1 appended, fwd barrier held (still queued).
        assert_eq!(out, vec![tdata([1u32]), tdata([2u32]), tbar(1)]);
        assert_eq!(
            fwd_left,
            vec![tbar(1)],
            "forward barrier held, not consumed"
        );

        // Backedge returns one survivor then the Ω1 echo; then the empty
        // wave's Ω1 echo signals drain.
        let (_, _, out2) = step2to1(&mut m, vec![tbar(1)], vec![tdata([2u32]), tbar(1)], true);
        assert_eq!(out2, vec![tdata([2u32]), tbar(1)]);
        let (_, _, out3) = step2to1(&mut m, vec![tbar(1)], vec![tbar(1)], true);
        assert_eq!(out3, vec![tbar(2)], "held Ω1 re-emitted one level higher");
    }

    #[test]
    fn fb_merge_zero_thread_tensor() {
        // A tensor with no threads: Ω1 arrives alone; wave 0 is empty; the
        // echo drains immediately.
        let mut m = FbMergeNode::new();
        let (_, _, out) = step2to1(&mut m, vec![tbar(1)], vec![], true);
        assert_eq!(out, vec![tbar(1)], "empty wave 0 still emits its Ω1");
        let (_, _, out2) = step2to1(&mut m, vec![tbar(1)], vec![tbar(1)], true);
        assert_eq!(out2, vec![tbar(2)]);
    }

    #[test]
    fn fb_merge_discards_high_echoes() {
        // After drain, the raised barrier echoes back on the backedge and is
        // discarded.
        let mut m = FbMergeNode::new();
        let (_, back_left, out) = step2to1(&mut m, vec![], vec![tbar(2)], true);
        assert!(out.is_empty());
        assert!(back_left.is_empty(), "echo consumed");
    }
}
