//! The element-wise (pipeline) node.
//!
//! An [`EwNode`] models the body of a compute-unit pipeline: it consumes one
//! thread from each input port in lockstep (the pipeline head "wait[s] for
//! all inputs to be available for element-wise operations", §III-C), runs a
//! straight-line instruction sequence over the thread's registers, and emits
//! selected registers on each output port. Outputs may be *predicated*
//! (filter tails, §III-B c) and may *strip barriers* (broadcast parent links
//! carry data only).

use crate::instr::{exec_instrs, EwInstr, Reg};
use crate::node::{FusedSpec, MachineError, Node, NodeIo};
use revet_sltf::{BarrierLevel, Tok, Word};

/// Where one output port gets its tuple and when it fires.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OutputSpec {
    /// Registers forming the output tuple (in order).
    pub slots: Vec<Reg>,
    /// Send data only when register `.0` has truthiness `.1` (filter output).
    pub pred: Option<(Reg, bool)>,
    /// Do not forward barriers on this port (broadcast parent links).
    pub strip_barriers: bool,
}

impl OutputSpec {
    /// An unconditional output of the given registers.
    pub fn plain(slots: impl Into<Vec<Reg>>) -> Self {
        OutputSpec {
            slots: slots.into(),
            pred: None,
            strip_barriers: false,
        }
    }

    /// A filtered output: fires when `reg`'s truthiness equals `expect`.
    pub fn filtered(slots: impl Into<Vec<Reg>>, reg: Reg, expect: bool) -> Self {
        OutputSpec {
            slots: slots.into(),
            pred: Some((reg, expect)),
            strip_barriers: false,
        }
    }

    /// An unconditional, barrier-stripping output (broadcast parent feed).
    pub fn stripped(slots: impl Into<Vec<Reg>>) -> Self {
        OutputSpec {
            slots: slots.into(),
            pred: None,
            strip_barriers: true,
        }
    }
}

/// An element-wise pipeline node. See module docs.
#[derive(Clone, Debug)]
pub struct EwNode {
    /// Straight-line per-thread program.
    pub instrs: Vec<EwInstr>,
    /// One spec per output port.
    pub outputs: Vec<OutputSpec>,
    reg_count: u16,
}

impl EwNode {
    /// Builds a node; the register file is sized from the instructions,
    /// output slots, and `min_regs` (which must cover the concatenated input
    /// arity, since inputs load into registers `0..arity_sum`).
    pub fn new(min_regs: u16, instrs: Vec<EwInstr>, outputs: Vec<OutputSpec>) -> Self {
        let mut reg_count = min_regs;
        for i in &instrs {
            reg_count = reg_count.max(i.max_reg());
        }
        for o in &outputs {
            for &s in &o.slots {
                reg_count = reg_count.max(s + 1);
            }
            if let Some((p, _)) = o.pred {
                reg_count = reg_count.max(p + 1);
            }
        }
        EwNode {
            instrs,
            outputs,
            reg_count,
        }
    }

    /// An identity node: forwards its (concatenated) inputs unchanged.
    pub fn passthrough(arity: u16) -> Self {
        EwNode::new(
            arity,
            Vec::new(),
            vec![OutputSpec::plain((0..arity).collect::<Vec<_>>())],
        )
    }

    /// The register-file size (resource accounting: §VI-A maps registers to
    /// the 6 vec/scal regs per lane per stage budget).
    pub fn reg_count(&self) -> u16 {
        self.reg_count
    }

    fn allocs_ready(&self, io: &NodeIo<'_>) -> bool {
        // Conservative stall check: every AllocPop needs one available
        // pointer before we commit to consuming the input thread.
        let mut need: Vec<(crate::mem::AllocId, usize)> = Vec::new();
        for ins in &self.instrs {
            if let Some(id) = ins.alloc_pop_id() {
                match need.iter_mut().find(|(n, _)| *n == id) {
                    Some((_, c)) => *c += 1,
                    None => need.push((id, 1)),
                }
            }
        }
        need.iter()
            .all(|(id, c)| io.mem_ref().alloc_available(*id) >= *c)
    }
}

impl Node for EwNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        let n_in = io.in_count();
        assert!(n_in >= 1, "EwNode requires at least one input");
        let mut progressed = false;
        'outer: loop {
            // Classify all input fronts.
            let mut min_bar: Option<BarrierLevel> = None;
            let mut all_data = true;
            let mut any_barrier = false;
            for i in 0..n_in {
                match io.peek_in(i) {
                    None => break 'outer,
                    Some(Tok::Data(_)) => {}
                    Some(Tok::Barrier(l)) => {
                        all_data = false;
                        any_barrier = true;
                        min_bar = Some(min_bar.map_or(*l, |m: BarrierLevel| m.min(*l)));
                    }
                }
            }
            if all_data {
                if !self.allocs_ready(io) {
                    break;
                }
                if !(0..self.outputs.len()).all(|o| io.can_push(o, false)) {
                    break;
                }
                // Commit: pop every input, concatenate into registers.
                let mut regs = vec![Word::ZERO; self.reg_count as usize];
                let mut cursor = 0usize;
                for i in 0..n_in {
                    match io.pop_in(i) {
                        Tok::Data(vals) => {
                            for v in vals {
                                regs[cursor] = v;
                                cursor += 1;
                            }
                        }
                        Tok::Barrier(_) => unreachable!("front changed between peek and pop"),
                    }
                }
                exec_instrs(&self.instrs, &mut regs, io.mem());
                for (o, spec) in self.outputs.iter().enumerate() {
                    let fire = spec
                        .pred
                        .map_or(true, |(r, expect)| regs[r as usize].as_bool() == expect);
                    if fire {
                        let tuple: Vec<Word> =
                            spec.slots.iter().map(|&s| regs[s as usize]).collect();
                        io.push(o, Tok::Data(tuple));
                    }
                }
                progressed = true;
            } else if any_barrier {
                // Mixed data/barrier fronts are a structure mismatch unless
                // the data fronts belong to ports whose barrier is *implied*…
                // which cannot happen for zip-aligned inputs, so data+barrier
                // is a hard error.
                for i in 0..n_in {
                    if io.peek_in(i).is_some_and(|t| t.is_data()) {
                        return Err(MachineError::new(format!(
                            "zip structure mismatch: input {i} has data while another input \
                             has a barrier"
                        )));
                    }
                }
                let level = min_bar.expect("at least one barrier front");
                // Forward one barrier to every non-stripped output.
                let need: Vec<usize> = self
                    .outputs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.strip_barriers)
                    .map(|(o, _)| o)
                    .collect();
                if !need.iter().all(|&o| io.can_push(o, true)) {
                    break;
                }
                for i in 0..n_in {
                    if io.peek_in(i).and_then(|t| t.barrier_level()) == Some(level) {
                        io.pop_in(i);
                    }
                }
                for &o in &need {
                    io.push(o, Tok::Barrier(level));
                }
                progressed = true;
            } else {
                break;
            }
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "ew"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }

    fn may_stall_on_alloc(&self) -> bool {
        self.instrs.iter().any(|i| i.alloc_pop_id().is_some())
    }

    /// An `EwNode` is pure per-thread data: its whole behavior is the
    /// instruction slice plus the output specs, so it lowers directly.
    fn fused_spec(&self) -> Option<FusedSpec> {
        Some(FusedSpec::Ew {
            instrs: self.instrs.clone(),
            outputs: self.outputs.clone(),
            reg_count: self.reg_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::instr::{AluOp, Operand};
    use crate::mem::MemoryState;
    use crate::node::{ChanId, PortBudget};
    use crate::tuple::{tbar, tdata, TTok};

    /// Runs a node over two input channels and returns output tokens.
    fn run2(node: &mut dyn Node, in0: Vec<TTok>, in1: Vec<TTok>, arities: [usize; 3]) -> Vec<TTok> {
        let mut chans = vec![
            Channel::new(arities[0]),
            Channel::new(arities[1]),
            Channel::new(arities[2]),
        ];
        for t in in0 {
            chans[0].push(t);
        }
        for t in in1 {
            chans[1].push(t);
        }
        let ins = [ChanId(0), ChanId(1)];
        let outs = [ChanId(2)];
        let mut mem = MemoryState::default();
        let mut ib = vec![PortBudget::UNLIMITED; 2];
        let mut ob = vec![PortBudget::UNLIMITED; 1];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        node.step(&mut io).unwrap();
        chans[2].drain_all()
    }

    fn run1(
        node: &mut dyn Node,
        input: Vec<TTok>,
        in_ar: usize,
        out_ars: &[usize],
    ) -> Vec<Vec<TTok>> {
        let mut chans = vec![Channel::new(in_ar)];
        for &a in out_ars {
            chans.push(Channel::new(a));
        }
        for t in input {
            chans[0].push(t);
        }
        let ins = [ChanId(0)];
        let outs: Vec<ChanId> = (1..=out_ars.len() as u32).map(ChanId).collect();
        let mut mem = MemoryState::default();
        let mut ib = vec![PortBudget::UNLIMITED; 1];
        let mut ob = vec![PortBudget::UNLIMITED; out_ars.len()];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        node.step(&mut io).unwrap();
        (1..=out_ars.len()).map(|i| chans[i].drain_all()).collect()
    }

    #[test]
    fn add_one() {
        let mut n = EwNode::new(
            1,
            vec![EwInstr::Alu {
                op: AluOp::Add,
                a: Operand::Reg(0),
                b: Operand::imm(1u32),
                dst: 1,
            }],
            vec![OutputSpec::plain([1])],
        );
        let out = run1(&mut n, vec![tdata([5u32]), tbar(1)], 1, &[1]);
        assert_eq!(out[0], vec![tdata([6u32]), tbar(1)]);
    }

    #[test]
    fn zip_concatenates_inputs() {
        let mut n = EwNode::passthrough(2);
        let out = run2(
            &mut n,
            vec![tdata([1u32]), tbar(1)],
            vec![tdata([10u32]), tbar(1)],
            [1, 1, 2],
        );
        assert_eq!(out, vec![tdata([1u32, 10u32]), tbar(1)]);
    }

    #[test]
    fn zip_realigns_implied_barriers() {
        // Input A: x Ω2 (Ω1 implied); input B: x Ω1 Ω2 explicit.
        let mut n = EwNode::passthrough(2);
        let mut chans = vec![
            Channel::new(1).without_canonicalization(),
            Channel::new(1).without_canonicalization(),
            Channel::new(2).without_canonicalization(),
        ];
        chans[0].push(tdata([1u32]));
        chans[0].push(tbar(2)); // canonical side
        chans[1].push(tdata([2u32]));
        chans[1].push(tbar(1));
        chans[1].push(tbar(2)); // explicit side
        let ins = [ChanId(0), ChanId(1)];
        let outs = [ChanId(2)];
        let mut mem = MemoryState::default();
        let mut ib = vec![PortBudget::UNLIMITED; 2];
        let mut ob = vec![PortBudget::UNLIMITED; 1];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        n.step(&mut io).unwrap();
        assert_eq!(
            chans[2].drain_all(),
            vec![tdata([1u32, 2u32]), tbar(1), tbar(2)]
        );
    }

    #[test]
    fn zip_mismatch_is_error() {
        let mut n = EwNode::passthrough(2);
        let mut chans = vec![Channel::new(1), Channel::new(1), Channel::new(2)];
        chans[0].push(tdata([1u32]));
        chans[1].push(tbar(1));
        let ins = [ChanId(0), ChanId(1)];
        let outs = [ChanId(2)];
        let mut mem = MemoryState::default();
        let mut ib = vec![PortBudget::UNLIMITED; 2];
        let mut ob = vec![PortBudget::UNLIMITED; 1];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        assert!(n.step(&mut io).is_err());
    }

    #[test]
    fn filtered_outputs_partition() {
        // pred = reg0 < 3 → out0; else out1. Barriers go to both.
        let mut n = EwNode::new(
            1,
            vec![EwInstr::Alu {
                op: AluOp::LtU,
                a: Operand::Reg(0),
                b: Operand::imm(3u32),
                dst: 1,
            }],
            vec![
                OutputSpec::filtered([0], 1, true),
                OutputSpec::filtered([0], 1, false),
            ],
        );
        let input = vec![tdata([1u32]), tdata([5u32]), tdata([2u32]), tbar(1)];
        let outs = run1(&mut n, input, 1, &[1, 1]);
        assert_eq!(outs[0], vec![tdata([1u32]), tdata([2u32]), tbar(1)]);
        assert_eq!(outs[1], vec![tdata([5u32]), tbar(1)]);
    }

    #[test]
    fn stripped_output_drops_barriers() {
        let mut n = EwNode::new(
            1,
            Vec::new(),
            vec![OutputSpec::plain([0]), OutputSpec::stripped([0])],
        );
        let input = vec![tdata([1u32]), tbar(1), tbar(2)];
        let outs = run1(&mut n, input, 1, &[1, 1]);
        assert_eq!(outs[0], vec![tdata([1u32]), tbar(2)]); // canonicalized
        assert_eq!(outs[1], vec![tdata([1u32])]);
    }

    #[test]
    fn void_tuples_flow() {
        // Arity-0 tuples (void tokens) are legal thread payloads.
        let mut n = EwNode::passthrough(0);
        let out = run1(&mut n, vec![tdata::<[u32; 0], u32>([]), tbar(1)], 0, &[0]);
        assert_eq!(out[0], vec![tdata::<[u32; 0], u32>([]), tbar(1)]);
    }

    #[test]
    fn alloc_stall_blocks_without_consuming() {
        let mut mem = MemoryState::default();
        let a = mem.add_alloc("bufs", 0); // empty: always stalls
        let mut n = EwNode::new(
            1,
            vec![EwInstr::AllocPop { alloc: a, dst: 1 }],
            vec![OutputSpec::plain([1])],
        );
        let mut chans = vec![Channel::new(1), Channel::new(1)];
        chans[0].push(tdata([1u32]));
        let ins = [ChanId(0)];
        let outs = [ChanId(1)];
        let mut ib = vec![PortBudget::UNLIMITED; 1];
        let mut ob = vec![PortBudget::UNLIMITED; 1];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        let progressed = n.step(&mut io).unwrap();
        assert!(!progressed);
        assert_eq!(chans[0].len(), 1, "input not consumed while stalled");
    }
}
