//! Graph endpoints: sources inject prepared streams, sinks collect results.

use crate::node::{token_bytes, FusedSpec, MachineError, Node, NodeIo};
use crate::tuple::TTok;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A shared handle to the tokens a [`SinkNode`] has collected.
#[derive(Clone, Debug, Default)]
pub struct SinkHandle(Arc<Mutex<Vec<TTok>>>);

impl SinkHandle {
    /// Snapshot of the collected tokens.
    pub fn tokens(&self) -> Vec<TTok> {
        self.0.lock().unwrap().clone()
    }

    /// Snapshot of the tokens collected from position `start` onward —
    /// streaming polls read only the delta since their last cursor.
    /// `start` past the end yields an empty vector.
    pub fn tokens_from(&self, start: usize) -> Vec<TTok> {
        let buf = self.0.lock().unwrap();
        buf.get(start..).map(<[TTok]>::to_vec).unwrap_or_default()
    }

    /// Number of collected tokens.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.0.lock().unwrap().is_empty()
    }

    /// Approximate resident heap bytes of the collected tokens.
    pub fn resident_bytes(&self) -> usize {
        self.0.lock().unwrap().iter().map(token_bytes).sum()
    }

    /// Appends every token `iter` yields under a single lock — the plan
    /// executor's fused sink drain (one lock per firing, not per token).
    pub(crate) fn collect_from(&self, iter: impl Iterator<Item = TTok>) {
        self.0.lock().unwrap().extend(iter);
    }
}

/// Injects a prepared token stream into the graph.
#[derive(Debug)]
pub struct SourceNode {
    pending: VecDeque<TTok>,
}

impl SourceNode {
    /// Creates a source holding `tokens`.
    pub fn new(tokens: impl IntoIterator<Item = TTok>) -> Self {
        SourceNode {
            pending: tokens.into_iter().collect(),
        }
    }
}

impl Node for SourceNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        let mut progressed = false;
        while let Some(front) = self.pending.front() {
            if !io.can_push(0, front.is_barrier()) {
                break;
            }
            let tok = self.pending.pop_front().expect("front checked");
            io.push(0, tok);
            progressed = true;
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "source"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(SourceNode {
            pending: self.pending.clone(),
        })
    }

    /// Sources accept appended input: streaming sessions extend the
    /// pending queue while the graph is paused, and the resumable
    /// executors re-wake the source on the next run.
    fn feed_tokens(&mut self, tokens: Vec<TTok>) -> Result<(), MachineError> {
        self.pending.extend(tokens);
        Ok(())
    }

    fn pending_input_tokens(&self) -> usize {
        self.pending.len()
    }

    fn resident_bytes(&self) -> usize {
        self.pending.iter().map(token_bytes).sum()
    }
}

/// Consumes and records every incoming token.
#[derive(Debug)]
pub struct SinkNode {
    out: SinkHandle,
}

impl SinkNode {
    /// Creates a sink and the handle used to read it after execution.
    pub fn new() -> (Self, SinkHandle) {
        let handle = SinkHandle::default();
        (
            SinkNode {
                out: handle.clone(),
            },
            handle,
        )
    }
}

impl Node for SinkNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        let mut progressed = false;
        while io.peek_in(0).is_some() {
            let tok = io.pop_in(0);
            self.out.0.lock().unwrap().push(tok);
            progressed = true;
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "sink"
    }

    /// A cloned sink collects into a **fresh, empty** buffer: instances of
    /// one compiled graph must never interleave their results. The new
    /// node's handle is reachable via [`Node::sink_handle`].
    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(SinkNode {
            out: SinkHandle::default(),
        })
    }

    fn sink_handle(&self) -> Option<SinkHandle> {
        Some(self.out.clone())
    }

    /// Sinks lower to a plan-native drain: pop everything on input 0 into
    /// the handle (the plan captures the handle at run start).
    fn fused_spec(&self) -> Option<FusedSpec> {
        Some(FusedSpec::Sink)
    }

    fn resident_bytes(&self) -> usize {
        self.out.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::mem::MemoryState;
    use crate::node::{ChanId, PortBudget};
    use crate::tuple::{tbar, tdata};

    #[test]
    fn source_to_sink() {
        let mut chans = vec![Channel::new(1)];
        let mut mem = MemoryState::default();
        let mut src = SourceNode::new(vec![tdata([1u32]), tbar(1)]);
        let (mut sink, handle) = SinkNode::new();

        let ins: [ChanId; 0] = [];
        let outs = [ChanId(0)];
        let mut ib = vec![];
        let mut ob = vec![PortBudget::UNLIMITED];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        assert!(src.step(&mut io).unwrap());

        let ins = [ChanId(0)];
        let outs: [ChanId; 0] = [];
        let mut ib = vec![PortBudget::UNLIMITED];
        let mut ob = vec![];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        assert!(sink.step(&mut io).unwrap());
        assert_eq!(handle.tokens(), vec![tdata([1u32]), tbar(1)]);
        assert_eq!(handle.len(), 2);
        assert!(!handle.is_empty());
    }

    #[test]
    fn source_respects_budget() {
        let mut chans = vec![Channel::new(1)];
        let mut mem = MemoryState::default();
        let mut src = SourceNode::new(vec![tdata([1u32]), tdata([2u32])]);
        let ins: [ChanId; 0] = [];
        let outs = [ChanId(0)];
        let mut ib = vec![];
        let mut ob = vec![PortBudget {
            data: 1,
            barrier: 1,
        }];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        src.step(&mut io).unwrap();
        assert_eq!(chans[0].len(), 1, "budget limited to one data token");
    }
}
