//! Expansion primitives: counters, forks, and broadcasts (§III-B b).
//!
//! - A **counter** turns each parent thread into a run of child threads
//!   (indices min..max by step) terminated by Ω1, raising all passing
//!   barriers one level: the entry half of a `foreach`.
//! - A **fork** duplicates a thread `count` times *without* adding
//!   hierarchy (expansion + flattening fused): dynamic thread spawning.
//! - A **broadcast** re-attaches a parent's live values to each child
//!   thread, popping the parent element when the child stream's Ω(level)
//!   arrives (§III-C) — the scalar-network optimization Aurochs lacked.

use crate::instr::Operand;
use crate::node::{MachineError, Node, NodeIo};
use crate::tuple::Tuple;
use revet_sltf::{BarrierLevel, Tok, Word};

/// Iteration state for a partially emitted index range.
#[derive(Clone, Debug)]
struct RangeState {
    next: i64,
    max: i64,
    step: i64,
    /// The parent tuple (forwarded on the passthrough port once).
    parent: Tuple,
    parent_sent: bool,
}

/// Counter node: expands each parent thread into an indexed child dimension.
///
/// Output port 0 carries child tuples `[index]` with barriers raised one
/// level and an Ω1 terminating each parent's children. Optional output port
/// 1 forwards the parent tuple (for broadcasts and result re-joins);
/// `parent_out_barriers` controls whether parent-level barriers appear there.
#[derive(Clone, Debug)]
pub struct CounterNode {
    /// Lower bound (evaluated against the parent tuple).
    pub min: Operand,
    /// Exclusive upper bound.
    pub max: Operand,
    /// Step (must evaluate non-zero).
    pub step: Operand,
    /// Forward barriers on the parent passthrough port.
    pub parent_out_barriers: bool,
    state: Option<RangeState>,
}

impl CounterNode {
    /// Creates a counter over `min..max` by `step`.
    pub fn new(min: Operand, max: Operand, step: Operand) -> Self {
        CounterNode {
            min,
            max,
            step,
            parent_out_barriers: true,
            state: None,
        }
    }

    /// Builder: strip barriers from the parent passthrough port (broadcast
    /// feeds want data only).
    pub fn with_data_only_parent(mut self) -> Self {
        self.parent_out_barriers = false;
        self
    }
}

impl Node for CounterNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        let has_parent_out = io.out_count() > 1;
        let mut progressed = false;
        loop {
            // Resume a partially emitted range first.
            if let Some(st) = &mut self.state {
                if has_parent_out && !st.parent_sent {
                    if !io.can_push(1, false) {
                        break;
                    }
                    let parent = st.parent.clone();
                    st.parent_sent = true;
                    io.push(1, Tok::Data(parent));
                    progressed = true;
                }
                let mut done = false;
                while let Some(st) = &mut self.state {
                    let more = if st.step > 0 {
                        st.next < st.max
                    } else {
                        st.next > st.max
                    };
                    if more {
                        if !io.can_push(0, false) {
                            done = true;
                            break;
                        }
                        let i = st.next;
                        st.next += st.step;
                        io.push(0, Tok::Data(vec![Word::from_i32(i as i32)]));
                        progressed = true;
                    } else {
                        if !io.can_push(0, true) {
                            done = true;
                            break;
                        }
                        io.push(0, Tok::Barrier(BarrierLevel::L1));
                        self.state = None;
                        progressed = true;
                    }
                }
                if done {
                    break;
                }
                continue;
            }
            match io.peek_in(0) {
                Some(Tok::Data(parent)) => {
                    let regs = parent.clone();
                    let min = self.min.eval(&regs).as_i32() as i64;
                    let max = self.max.eval(&regs).as_i32() as i64;
                    let step = self.step.eval(&regs).as_i32() as i64;
                    if step == 0 {
                        return Err(MachineError::new("counter step evaluated to zero"));
                    }
                    io.pop_in(0);
                    self.state = Some(RangeState {
                        next: min,
                        max,
                        step,
                        parent: regs,
                        parent_sent: !has_parent_out,
                    });
                    progressed = true;
                }
                Some(Tok::Barrier(l)) => {
                    let raised = l.raised().ok_or_else(|| {
                        MachineError::new("counter cannot raise a barrier past Ω15")
                    })?;
                    if !io.can_push(0, true) {
                        break;
                    }
                    if has_parent_out && self.parent_out_barriers && !io.can_push(1, true) {
                        break;
                    }
                    let l = *l;
                    io.pop_in(0);
                    io.push(0, Tok::Barrier(raised));
                    if has_parent_out && self.parent_out_barriers {
                        io.push(1, Tok::Barrier(l));
                    }
                    progressed = true;
                }
                None => break,
            }
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "counter"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
}

/// Fork node: emits `count` copies of each thread with an index appended,
/// at the *same* hierarchy level (§IV-A a). Barriers pass unchanged.
#[derive(Clone, Debug)]
pub struct ForkNode {
    /// Copy count (evaluated against the incoming tuple).
    pub count: Operand,
    /// Keep only these tuple slots in the copies (None = all).
    pub keep: Option<Vec<u16>>,
    state: Option<(Tuple, i64, i64)>, // (payload, next index, count)
}

impl ForkNode {
    /// Creates a fork with dynamic count.
    pub fn new(count: Operand) -> Self {
        ForkNode {
            count,
            keep: None,
            state: None,
        }
    }
}

impl Node for ForkNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        let mut progressed = false;
        loop {
            if let Some((payload, next, count)) = &mut self.state {
                let mut blocked = false;
                while *next < *count {
                    if !io.can_push(0, false) {
                        blocked = true;
                        break;
                    }
                    let mut t = payload.clone();
                    t.push(Word::from_i32(*next as i32));
                    *next += 1;
                    io.push(0, Tok::Data(t));
                    progressed = true;
                }
                if blocked {
                    break;
                }
                self.state = None;
                continue;
            }
            match io.peek_in(0) {
                Some(Tok::Data(vals)) => {
                    let count = self.count.eval(vals).as_i32() as i64;
                    let payload = match &self.keep {
                        Some(keep) => keep.iter().map(|&k| vals[k as usize]).collect(),
                        None => vals.clone(),
                    };
                    io.pop_in(0);
                    self.state = Some((payload, 0, count));
                    progressed = true;
                }
                Some(Tok::Barrier(_)) => {
                    if !io.can_push(0, true) {
                        break;
                    }
                    let b = io.pop_in(0);
                    io.push(0, b);
                    progressed = true;
                }
                None => break,
            }
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "fork"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
}

/// Broadcast node: input 0 is the parent link (data-only), input 1 the child
/// stream; the output carries `child ++ parent` tuples. The parent element
/// is dropped when the child stream's Ω(level) arrives — or implicitly by a
/// higher barrier directly following child data (canonical encoding).
#[derive(Clone, Debug)]
pub struct BroadcastNode {
    /// Dimension distance between parent and child (≥1).
    pub level: u8,
    current: Option<Tuple>,
}

impl BroadcastNode {
    /// Creates a broadcast across `level` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `level == 0`.
    pub fn new(level: u8) -> Self {
        assert!(level >= 1, "broadcast level must be at least 1");
        BroadcastNode {
            level,
            current: None,
        }
    }
}

impl Node for BroadcastNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        const PARENT: usize = 0;
        const CHILD: usize = 1;
        let mut progressed = false;
        loop {
            match io.peek_in(CHILD) {
                Some(Tok::Data(_)) => {
                    if self.current.is_none() {
                        match io.peek_in(PARENT) {
                            Some(Tok::Data(_)) => {
                                let t = io.pop_in(PARENT);
                                self.current = t.into_data();
                                progressed = true;
                            }
                            Some(Tok::Barrier(_)) => {
                                return Err(MachineError::new(
                                    "broadcast parent link must be data-only",
                                ))
                            }
                            None => break, // parent hasn't arrived yet
                        }
                    }
                    if !io.can_push(0, false) {
                        break;
                    }
                    let child = io.pop_in(CHILD).into_data().expect("peeked data");
                    let mut out = child;
                    out.extend_from_slice(self.current.as_ref().expect("loaded above"));
                    io.push(0, Tok::Data(out));
                    progressed = true;
                }
                Some(Tok::Barrier(l)) => {
                    let n = l.get();
                    if !io.can_push(0, true) {
                        break;
                    }
                    if n < self.level {
                        // Barrier nested inside one parent element.
                        let b = io.pop_in(CHILD);
                        io.push(0, b);
                        progressed = true;
                    } else if self.current.is_some() {
                        self.current = None;
                        let b = io.pop_in(CHILD);
                        io.push(0, b);
                        progressed = true;
                    } else if n == self.level {
                        // An empty child dimension still consumes one parent.
                        match io.peek_in(PARENT) {
                            Some(Tok::Data(_)) => {
                                io.pop_in(PARENT);
                                let b = io.pop_in(CHILD);
                                io.push(0, b);
                                progressed = true;
                            }
                            Some(Tok::Barrier(_)) => {
                                return Err(MachineError::new(
                                    "broadcast parent link must be data-only",
                                ))
                            }
                            None => break,
                        }
                    } else {
                        // Higher barrier with no loaded parent: parent dims
                        // ending; nothing to consume.
                        let b = io.pop_in(CHILD);
                        io.push(0, b);
                        progressed = true;
                    }
                }
                None => break,
            }
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "broadcast"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::mem::MemoryState;
    use crate::node::{ChanId, PortBudget};
    use crate::tuple::{tbar, tdata, TTok};

    fn run(
        node: &mut dyn Node,
        inputs: Vec<(Vec<TTok>, usize)>,
        out_arities: &[usize],
    ) -> Vec<Vec<TTok>> {
        let n_in = inputs.len();
        let mut chans: Vec<Channel> = inputs
            .iter()
            .map(|(_, a)| Channel::new(*a).without_canonicalization())
            .collect();
        for &a in out_arities {
            chans.push(Channel::new(a).without_canonicalization());
        }
        for (i, (toks, _)) in inputs.into_iter().enumerate() {
            for t in toks {
                chans[i].push(t);
            }
        }
        let ins: Vec<ChanId> = (0..n_in as u32).map(ChanId).collect();
        let outs: Vec<ChanId> = (n_in as u32..(n_in + out_arities.len()) as u32)
            .map(ChanId)
            .collect();
        let mut mem = MemoryState::default();
        let mut ib = vec![PortBudget::UNLIMITED; n_in];
        let mut ob = vec![PortBudget::UNLIMITED; out_arities.len()];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        node.step(&mut io).unwrap();
        (n_in..n_in + out_arities.len())
            .map(|i| chans[i].drain_all())
            .collect()
    }

    #[test]
    fn counter_expands_and_raises() {
        // Parent threads [2],[1] with Ω1: each expands to 0..n, barriers raise.
        let mut c = CounterNode::new(Operand::imm(0u32), Operand::Reg(0), Operand::imm(1u32));
        let outs = run(
            &mut c,
            vec![(vec![tdata([2u32]), tdata([1u32]), tbar(1)], 1)],
            &[1, 1],
        );
        assert_eq!(
            outs[0],
            vec![
                tdata([0u32]),
                tdata([1u32]),
                tbar(1),
                tdata([0u32]),
                tbar(1),
                tbar(2)
            ]
        );
        assert_eq!(outs[1], vec![tdata([2u32]), tdata([1u32]), tbar(1)]);
    }

    #[test]
    fn counter_zero_trip_emits_empty_dim() {
        let mut c = CounterNode::new(Operand::imm(0u32), Operand::Reg(0), Operand::imm(1u32));
        let outs = run(&mut c, vec![(vec![tdata([0u32]), tbar(1)], 1)], &[1]);
        assert_eq!(outs[0], vec![tbar(1), tbar(2)], "empty dim preserved");
    }

    #[test]
    fn counter_data_only_parent() {
        let mut c = CounterNode::new(Operand::imm(0u32), Operand::Reg(0), Operand::imm(1u32))
            .with_data_only_parent();
        let outs = run(&mut c, vec![(vec![tdata([1u32]), tbar(1)], 1)], &[1, 1]);
        assert_eq!(outs[1], vec![tdata([1u32])], "no barriers on parent port");
    }

    #[test]
    fn fork_duplicates_without_hierarchy() {
        let mut f = ForkNode::new(Operand::Reg(0));
        let outs = run(&mut f, vec![(vec![tdata([3u32]), tbar(1)], 1)], &[2]);
        assert_eq!(
            outs[0],
            vec![
                tdata([3u32, 0u32]),
                tdata([3u32, 1u32]),
                tdata([3u32, 2u32]),
                tbar(1)
            ]
        );
    }

    #[test]
    fn fork_zero_count_drops_thread() {
        let mut f = ForkNode::new(Operand::imm(0u32));
        let outs = run(&mut f, vec![(vec![tdata([9u32]), tbar(1)], 1)], &[2]);
        assert_eq!(outs[0], vec![tbar(1)]);
    }

    #[test]
    fn broadcast_attaches_parent_per_child() {
        // Parent: a=10, b=20 (data only). Child: two children for a, one for b.
        let mut b = BroadcastNode::new(1);
        let outs = run(
            &mut b,
            vec![
                (vec![tdata([10u32]), tdata([20u32])], 1),
                (
                    vec![
                        tdata([0u32]),
                        tdata([1u32]),
                        tbar(1),
                        tdata([0u32]),
                        tbar(1),
                        tbar(2),
                    ],
                    1,
                ),
            ],
            &[2],
        );
        assert_eq!(
            outs[0],
            vec![
                tdata([0u32, 10u32]),
                tdata([1u32, 10u32]),
                tbar(1),
                tdata([0u32, 20u32]),
                tbar(1),
                tbar(2),
            ]
        );
    }

    #[test]
    fn broadcast_empty_child_dim_consumes_parent() {
        // a has no children (Ω1 immediately), b has one.
        let mut b = BroadcastNode::new(1);
        let outs = run(
            &mut b,
            vec![
                (vec![tdata([10u32]), tdata([20u32])], 1),
                (vec![tbar(1), tdata([0u32]), tbar(1), tbar(2)], 1),
            ],
            &[2],
        );
        assert_eq!(
            outs[0],
            vec![tbar(1), tdata([0u32, 20u32]), tbar(1), tbar(2)]
        );
    }

    #[test]
    fn broadcast_handles_implied_inner_barrier() {
        // Canonical child: x Ω2 — the Ω1 dropping the parent is implied.
        let mut b = BroadcastNode::new(1);
        let outs = run(
            &mut b,
            vec![(vec![tdata([10u32])], 1), (vec![tdata([0u32]), tbar(2)], 1)],
            &[2],
        );
        assert_eq!(outs[0], vec![tdata([0u32, 10u32]), tbar(2)]);
    }

    #[test]
    fn counter_negative_step() {
        let mut c = CounterNode::new(Operand::imm(3u32), Operand::imm(0u32), Operand::imm(-1i32));
        let outs = run(&mut c, vec![(vec![tdata([0u32]), tbar(1)], 1)], &[1]);
        assert_eq!(
            outs[0],
            vec![
                tdata([3u32]),
                tdata([2u32]),
                tdata([1u32]),
                tbar(1),
                tbar(2)
            ]
        );
    }
}
