//! Contraction primitives: reduction and flattening (§III-B b).
//!
//! Reduction coalesces the innermost dimension into one element with an
//! associative operator, lowering each barrier one level. The empty-tensor
//! rules of §III-A b are load-bearing here: `[[]]`, `[[],[]]` and `[]`
//! reduce to `[0]`, `[0,0]` and `[]` respectively — one emission per inner
//! dimension *terminator*, including empty ones, and none for absent ones.
//!
//! Flattening removes one hierarchy level while leaving elements untouched.

use crate::instr::AluOp;
use crate::node::{MachineError, Node, NodeIo};
use revet_sltf::{Tok, Word};

/// Reduce node: folds dimension 1 into single elements.
///
/// With `op = None` this is a **void reduction**: inputs are void tokens
/// (arity-0 tuples) and one void token is emitted per inner dimension — the
/// synchronization idiom used for memory-ordering at `foreach` ends.
#[derive(Clone, Debug)]
pub struct ReduceNode {
    /// The associative operator (`None` = void reduction).
    pub op: Option<AluOp>,
    /// Initial accumulator value (also the result for empty dimensions).
    pub init: Word,
    acc: Word,
    pending: bool,
}

impl ReduceNode {
    /// Creates an arithmetic reduction.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not associative/commutative
    /// ([`AluOp::is_reduction_compatible`]).
    pub fn new(op: AluOp, init: impl Into<Word>) -> Self {
        assert!(
            op.is_reduction_compatible(),
            "{op:?} is not a valid reduction operator"
        );
        let init = init.into();
        ReduceNode {
            op: Some(op),
            init,
            acc: init,
            pending: false,
        }
    }

    /// Creates a void (synchronization-only) reduction.
    pub fn void() -> Self {
        ReduceNode {
            op: None,
            init: Word::ZERO,
            acc: Word::ZERO,
            pending: false,
        }
    }

    fn emit_tuple(&self) -> Vec<Word> {
        match self.op {
            Some(_) => vec![self.acc],
            None => Vec::new(),
        }
    }
}

impl Node for ReduceNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        let mut progressed = false;
        loop {
            match io.peek_in(0) {
                Some(Tok::Data(vals)) => {
                    if let Some(op) = self.op {
                        if vals.is_empty() {
                            return Err(MachineError::new(
                                "arithmetic reduce received a void token",
                            ));
                        }
                        self.acc = op.apply(self.acc, vals[0]);
                    }
                    io.pop_in(0);
                    self.pending = true;
                    progressed = true;
                }
                Some(Tok::Barrier(l)) => {
                    let n = l.get();
                    if n == 1 {
                        // Ω1 always completes a dimension, even an empty one.
                        if !io.can_push(0, false) {
                            break;
                        }
                        io.pop_in(0);
                        io.push(0, Tok::Data(self.emit_tuple()));
                        self.acc = self.init;
                        self.pending = false;
                        progressed = true;
                    } else {
                        // Ωn (n ≥ 2): an implied Ω1 precedes it iff data
                        // arrived since the last emission.
                        let need_data_push = self.pending;
                        if need_data_push && !io.can_push(0, false) {
                            break;
                        }
                        if !io.can_push(0, true) {
                            break;
                        }
                        let lowered = l.lowered().expect("n >= 2 lowers fine");
                        io.pop_in(0);
                        if need_data_push {
                            io.push(0, Tok::Data(self.emit_tuple()));
                            self.acc = self.init;
                            self.pending = false;
                        }
                        io.push(0, Tok::Barrier(lowered));
                        progressed = true;
                    }
                }
                None => break,
            }
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "reduce"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
}

/// Flatten node: removes one hierarchy level (Ω1 dropped, Ωn lowered). Also
/// serves as the **loop-exit** edge operator of §III-B d ("edges leaving the
/// body then lower all barriers by one level").
#[derive(Clone, Debug, Default)]
pub struct FlattenNode {
    _priv: (),
}

impl FlattenNode {
    /// Creates a flatten.
    pub fn new() -> Self {
        FlattenNode::default()
    }
}

impl Node for FlattenNode {
    fn step(&mut self, io: &mut NodeIo<'_>) -> Result<bool, MachineError> {
        let mut progressed = false;
        loop {
            match io.peek_in(0) {
                Some(Tok::Data(_)) => {
                    if !io.can_push(0, false) {
                        break;
                    }
                    let t = io.pop_in(0);
                    io.push(0, t);
                    progressed = true;
                }
                Some(Tok::Barrier(l)) => match l.lowered() {
                    Some(lowered) => {
                        if !io.can_push(0, true) {
                            break;
                        }
                        io.pop_in(0);
                        io.push(0, Tok::Barrier(lowered));
                        progressed = true;
                    }
                    None => {
                        io.pop_in(0); // Ω1 vanishes
                        progressed = true;
                    }
                },
                None => break,
            }
        }
        Ok(progressed)
    }

    fn kind(&self) -> &'static str {
        "flatten"
    }

    fn clone_node(&self) -> Box<dyn Node> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::mem::MemoryState;
    use crate::node::{ChanId, PortBudget};
    use crate::tuple::{tbar, tdata, TTok};

    fn run(node: &mut dyn Node, input: Vec<TTok>, in_ar: usize, out_ar: usize) -> Vec<TTok> {
        let mut chans = vec![
            Channel::new(in_ar).without_canonicalization(),
            Channel::new(out_ar).without_canonicalization(),
        ];
        for t in input {
            chans[0].push(t);
        }
        let ins = [ChanId(0)];
        let outs = [ChanId(1)];
        let mut mem = MemoryState::default();
        let mut ib = vec![PortBudget::UNLIMITED; 1];
        let mut ob = vec![PortBudget::UNLIMITED; 1];
        let mut io = NodeIo::new(&mut chans, &ins, &outs, &mut mem, &mut ib, &mut ob);
        node.step(&mut io).unwrap();
        chans[1].drain_all()
    }

    #[test]
    fn sum_two_dims() {
        // [[1,2],[3]] → [3, 3] with barriers lowered: 1 2 Ω1 3 Ω2 → 3 3 Ω1.
        let mut r = ReduceNode::new(AluOp::Add, 0u32);
        let out = run(
            &mut r,
            vec![
                tdata([1u32]),
                tdata([2u32]),
                tbar(1),
                tdata([3u32]),
                tbar(2),
            ],
            1,
            1,
        );
        assert_eq!(out, vec![tdata([3u32]), tdata([3u32]), tbar(1)]);
    }

    #[test]
    fn empty_tensor_rules() {
        // §III-A b: [[]]→[0], [[],[]]→[0,0], []→[].
        let mut r = ReduceNode::new(AluOp::Add, 0u32);
        assert_eq!(
            run(&mut r, vec![tbar(1), tbar(2)], 1, 1),
            vec![tdata([0u32]), tbar(1)]
        );
        let mut r = ReduceNode::new(AluOp::Add, 0u32);
        assert_eq!(
            run(&mut r, vec![tbar(1), tbar(1), tbar(2)], 1, 1),
            vec![tdata([0u32]), tdata([0u32]), tbar(1)]
        );
        let mut r = ReduceNode::new(AluOp::Add, 0u32);
        assert_eq!(run(&mut r, vec![tbar(2)], 1, 1), vec![tbar(1)]);
    }

    #[test]
    fn canonical_input_implied_emit() {
        // 1 Ω2 (Ω1 implied after data) must still emit the partial sum.
        let mut r = ReduceNode::new(AluOp::Add, 0u32);
        assert_eq!(
            run(&mut r, vec![tdata([1u32]), tbar(2)], 1, 1),
            vec![tdata([1u32]), tbar(1)]
        );
    }

    #[test]
    fn min_reduction_with_init() {
        let mut r = ReduceNode::new(AluOp::MinS, i32::MAX);
        assert_eq!(
            run(
                &mut r,
                vec![tdata([5u32]), tdata([2u32]), tdata([9u32]), tbar(1)],
                1,
                1
            ),
            vec![tdata([2u32])]
        );
    }

    #[test]
    fn void_reduce_synchronizes() {
        // [[v,v]] → one void token per inner dimension: [v], barriers lowered.
        let mut r = ReduceNode::void();
        let v = || tdata::<[u32; 0], u32>([]);
        assert_eq!(
            run(&mut r, vec![v(), v(), tbar(1), tbar(2)], 0, 0),
            vec![v(), tbar(1)]
        );
    }

    #[test]
    #[should_panic(expected = "not a valid reduction")]
    fn non_associative_rejected() {
        let _ = ReduceNode::new(AluOp::Sub, 0u32);
    }

    #[test]
    fn flatten_lowers_and_drops() {
        let mut f = FlattenNode::new();
        assert_eq!(
            run(
                &mut f,
                vec![tdata([1u32]), tbar(1), tdata([2u32]), tbar(2)],
                1,
                1
            ),
            vec![tdata([1u32]), tdata([2u32]), tbar(1)]
        );
    }

    #[test]
    fn flatten_as_loop_exit() {
        // Fig. 4 stream D before lowering: t3 t1 t2 t4 with wave Ω1s and the
        // final raised barrier.
        let mut f = FlattenNode::new();
        let input = vec![
            tdata([3u32]),
            tbar(1),
            tdata([1u32]),
            tbar(1),
            tdata([2u32]),
            tdata([4u32]),
            tbar(1),
            tbar(2),
        ];
        assert_eq!(
            run(&mut f, input, 1, 1),
            vec![
                tdata([3u32]),
                tdata([1u32]),
                tdata([2u32]),
                tdata([4u32]),
                tbar(1)
            ]
        );
    }
}
