//! The §III-B streaming primitives.

mod contract;
mod endpoints;
mod ew;
mod expand;
mod merge;

pub use contract::{FlattenNode, ReduceNode};
pub use endpoints::{SinkHandle, SinkNode, SourceNode};
pub use ew::{EwNode, OutputSpec};
pub use expand::{BroadcastNode, CounterNode, ForkNode};
pub use merge::{FbMergeNode, FwdMergeNode};
