//! # revet-machine — the abstract dataflow-threads machine
//!
//! Executable semantics for the generic dataflow model of §III of *"Revet:
//! A Language and Compiler for Dataflow Threads"* (HPCA 2024): streaming
//! tensor primitives over SLTF links, composed into dataflow graphs, plus an
//! untimed Kahn-style executor used as the functional reference for compiled
//! programs.
//!
//! The primitive set ([`nodes`]) matches §III-B:
//!
//! | Paper primitive          | Node                              |
//! |--------------------------|-----------------------------------|
//! | element-wise / filter    | [`nodes::EwNode`] (+ predicated outputs) |
//! | expansion: counter       | [`nodes::CounterNode`]            |
//! | expansion: broadcast     | [`nodes::BroadcastNode`]          |
//! | fork (expand + flatten)  | [`nodes::ForkNode`]               |
//! | reduction                | [`nodes::ReduceNode`]             |
//! | flattening / loop exit   | [`nodes::FlattenNode`]            |
//! | forward merge            | [`nodes::FwdMergeNode`]           |
//! | forward-backward merge   | [`nodes::FbMergeNode`]            |
//!
//! All primitives observe the two SLTF composability rules: barriers pass
//! through exactly once, in order, and data never reorders across barriers.
//!
//! The untimed executor is **event-driven**: a precomputed [`TopologyIndex`]
//! maps channels to their endpoints, and a ready worklist re-steps a node
//! only when an input channel gains tokens, a full output channel regains
//! capacity, or an allocator queue it can block on receives a pointer. Kahn
//! semantics make the results scheduler-order independent, so the ready-set
//! executor and the retained dense-sweep reference
//! ([`Graph::run_untimed_dense`]) produce identical streams and memory —
//! the ready set just attempts far fewer steps (see
//! [`ExecReport::productive_ratio`]).
//!
//! The hot path does not interpret boxed nodes at all: a finished graph
//! flattens once into an [`ExecPlan`] — fused element-wise segments,
//! native sink drains, a bitmap worklist, and a boxed fallback for
//! everything else — which [`Graph::run_untimed_planned`] executes with
//! bit-identical results (see the [`ExecPlan`] docs).
//!
//! ## Example: a `foreach` as counter + reduce (paper Fig. 2)
//!
//! ```
//! use revet_machine::{Channel, Graph, tdata, tbar};
//! use revet_machine::nodes::{CounterNode, ReduceNode, SinkNode, SourceNode};
//! use revet_machine::instr::{AluOp, Operand};
//!
//! let mut g = Graph::new();
//! let a = g.add_chan(Channel::new(1));
//! let b = g.add_chan(Channel::new(1));
//! let d = g.add_chan(Channel::new(1));
//! g.add_node("enter", Box::new(SourceNode::new(vec![tdata([3u32]), tbar(1)])), vec![], vec![a]);
//! g.add_node(
//!     "counter",
//!     Box::new(CounterNode::new(Operand::imm(0u32), Operand::Reg(0), Operand::imm(1u32))),
//!     vec![a],
//!     vec![b],
//! );
//! g.add_node("reduce", Box::new(ReduceNode::new(AluOp::Add, 0u32)), vec![b], vec![d]);
//! let (sink, out) = SinkNode::new();
//! g.add_node("exit", Box::new(sink), vec![d], vec![]);
//! g.run_untimed(1_000).unwrap();
//! // sum(0..3) = 3, still a 1-D stream of one thread.
//! assert_eq!(out.tokens(), vec![tdata([3u32]), tbar(1)]);
//! ```

#![warn(missing_docs)]

mod channel;
mod graph;
pub mod instr;
mod mem;
mod node;
pub mod nodes;
mod plan;
mod ring;
mod tuple;

pub use channel::{Channel, LinkClass};
pub use graph::{ExecReport, Graph, NodeSlot, ResumeState, RunStatus, TopologyIndex, UnitClass};
pub use mem::{AllocId, AllocQueue, MemoryState, SramId, SramRegion};
pub use node::{ChanId, FusedSpec, IoEvents, MachineError, Node, NodeId, NodeIo, PortBudget};
pub use plan::{ExecPlan, PlanStats};
pub use ring::Ring;
pub use tuple::{tbar, tdata, TTok, Tuple};
