//! The compiled execution plan: a flattened, arena-backed fast path for
//! finished graphs.
//!
//! Interpreting a [`Graph`] pays for virtual dispatch (`Box<dyn Node>`),
//! behavior take/restore, `NodeIo` assembly, and a fresh register vector
//! per data token. An [`ExecPlan`] is built **once** per compile from the
//! finished wiring and removes all of that from the hot loop:
//!
//! - **Arenas.** Every per-node quantity lives in one dense buffer indexed
//!   by node: plan kinds, stage descriptors, input-port lists, fused
//!   micro-ops, and output specs are flat `Vec`s addressed by `u32`
//!   ranges. Channel endpoint (producer/consumer) lists are flattened the
//!   same way, so a wake is two array lookups.
//! - **Fused segments.** Element-wise nodes lower onto a micro-op form
//!   ([`crate::Node::fused_spec`]); maximal straight-line chains of them
//!   (single producer → single consumer over a private unbounded channel)
//!   become one *segment* that fires as a unit: each stage drains its
//!   input through the real channels, so barrier canonicalization, filter
//!   predicates, and per-channel statistics behave exactly as under the
//!   interpreter — the saving is one scheduler dispatch and zero virtual
//!   calls per segment instead of one per node, plus a reused scratch
//!   register file instead of a per-token allocation. Single-input sinks
//!   lower to a native drain under one lock per firing.
//! - **Bitmap worklist.** The ready set is a pair of `u64` bitmaps
//!   (current/next generation) with O(1) wake and pop-lowest; a fused
//!   segment occupies a single bit regardless of its length.
//!
//! Anything the plan cannot lower — sources (mutable pending state),
//! merges, expanders, allocator-stalling stages, nodes on bounded
//! channels — stays on the boxed [`crate::Node::step`] path behind the
//! same scheduler, so the plan is **total**: every graph runs, only the
//! hot kinds run faster. Kahn semantics guarantee the result is
//! bit-identical to the interpreted executors; the `scheduler_equiv`
//! property suite and the eight-app benchmark assert it.

use crate::graph::{ExecReport, Graph, ResumeState, RunStatus};
use crate::instr::{exec_instrs, EwInstr, Reg};
use crate::node::{ChanId, FusedSpec, IoEvents, MachineError, NodeId, PortBudget};
use crate::nodes::{OutputSpec, SinkHandle};
use revet_obs::{ObsSink, WakeCause};
use revet_sltf::{BarrierLevel, Tok, Word};

/// A lowered element-wise behavior awaiting segment assembly.
type EwLowering = (Vec<EwInstr>, Vec<OutputSpec>, u16);

/// How the plan executes one node.
#[derive(Clone, Copy, Debug)]
enum PlanKind {
    /// Member of fused segment `.0` (firing any member fires the whole
    /// segment from its head; wakes are redirected to one bit per segment).
    Seg(u32),
    /// Fused single-input sink draining channel `.0`.
    Sink(ChanId),
    /// Fallback: step the boxed behavior through the interpreter surface.
    Boxed,
}

/// One fused pipeline stage: an element-wise node lowered into the plan's
/// arenas. All ranges are `u32` half-open index pairs into the flat
/// buffers on [`ExecPlan`].
#[derive(Clone, Debug)]
struct Stage {
    /// Graph node index (error attribution and diagnostics).
    node: u32,
    /// Input channels: range into `ExecPlan::ports`.
    ins: (u32, u32),
    /// Micro-ops: range into `ExecPlan::micro`.
    instrs: (u32, u32),
    /// Output descriptors: range into `ExecPlan::outs`.
    outs: (u32, u32),
    /// Register-file size for this stage's scratch window.
    reg_count: u16,
}

/// One fused output port: the node's [`OutputSpec`] plus its resolved
/// channel and whether a push on it must wake consumers (false only for a
/// segment-internal forwarding edge, which the next stage drains within
/// the same firing).
#[derive(Clone, Debug)]
struct PlanOut {
    slots: Box<[Reg]>,
    pred: Option<(Reg, bool)>,
    strip_barriers: bool,
    chan: ChanId,
    wake: bool,
}

/// Static shape counters for one built plan (reports and benchmarks).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PlanStats {
    /// Total nodes in the planned graph.
    pub nodes: usize,
    /// Element-wise nodes lowered into fused segments.
    pub fused_ew: usize,
    /// Sinks lowered to the native drain.
    pub fused_sinks: usize,
    /// Nodes left on the boxed fallback path.
    pub boxed: usize,
    /// Fused segments (a segment is ≥1 chained stage).
    pub segments: usize,
    /// Stage count of the longest segment.
    pub longest_segment: usize,
}

/// A compiled execution plan. Immutable once built; shared (`Arc`) across
/// every instance of a compiled program, like the topology index. See the
/// module docs for the layout.
#[derive(Debug)]
pub struct ExecPlan {
    // -- shape fingerprint (validated against the graph at run start) --
    node_count: usize,
    chan_count: usize,
    // -- per-node --
    kinds: Vec<PlanKind>,
    /// Bit to set when waking a node: the segment head for members, the
    /// node itself otherwise.
    wake_target: Vec<u32>,
    // -- segment arenas --
    /// Segment `s` owns `stages[seg_bounds[s]..seg_bounds[s+1]]`.
    seg_bounds: Vec<u32>,
    stages: Vec<Stage>,
    ports: Vec<ChanId>,
    micro: Vec<EwInstr>,
    outs: Vec<PlanOut>,
    // -- flattened channel endpoints (wake lists) --
    consumers: Vec<u32>,
    cons_off: Vec<u32>,
    producers: Vec<u32>,
    prod_off: Vec<u32>,
    /// Nodes that may stall on allocator availability (always boxed).
    alloc_waiters: Vec<u32>,
    // -- executor sizing --
    max_regs: usize,
    max_in: usize,
    max_out: usize,
    stats: PlanStats,
}

/// The two-generation bitmap worklist: `cur` drains while wakes land in
/// `next`; membership in either suppresses re-queueing (the same dedup the
/// interpreter's `queued` flags provide).
struct WakeSet {
    cur: Vec<u64>,
    next: Vec<u64>,
    next_count: usize,
}

impl WakeSet {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        WakeSet {
            cur: vec![0; words],
            next: vec![0; words],
            next_count: 0,
        }
    }

    #[inline]
    fn seed(&mut self, i: u32) {
        self.cur[i as usize / 64] |= 1 << (i % 64);
    }

    /// Queues `i` for the next generation; returns whether it was newly
    /// queued (false = already pending in either generation).
    #[inline]
    fn wake(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, 1u64 << (i % 64));
        if (self.cur[w] | self.next[w]) & b == 0 {
            self.next[w] |= b;
            self.next_count += 1;
            true
        } else {
            false
        }
    }
}

impl ExecPlan {
    /// Flattens a finished graph into a plan. Total: every node gets a
    /// kind, with non-lowerable ones on the boxed fallback. The graph is
    /// not modified; the plan matches any graph with identical wiring
    /// (every [`Graph::fresh_instance`] of the same compile).
    pub fn build(g: &Graph) -> ExecPlan {
        let nodes = g.nodes();
        let chans = g.chans();
        let n = nodes.len();

        // Channel endpoints from the wiring (independent of the graph's
        // own TopologyIndex so half-built test graphs also plan).
        let mut cons: Vec<Vec<u32>> = vec![Vec::new(); chans.len()];
        let mut prods: Vec<Vec<u32>> = vec![Vec::new(); chans.len()];
        let mut alloc_waiters = Vec::new();
        for (i, slot) in nodes.iter().enumerate() {
            for c in &slot.ins {
                cons[c.0 as usize].push(i as u32);
            }
            for c in &slot.outs {
                prods[c.0 as usize].push(i as u32);
            }
            if slot
                .behavior
                .as_ref()
                .is_some_and(|b| b.may_stall_on_alloc())
            {
                alloc_waiters.push(i as u32);
            }
        }

        // Lowerable behaviors. Element-wise fusion additionally requires:
        // no allocator stalls (fused stages commit without a stall check),
        // ≥1 input (EwNode's own invariant), unbounded outputs (fused
        // pushes skip room checks), and a spec/wiring port-count match.
        let mut ew_spec: Vec<Option<EwLowering>> = (0..n).map(|_| None).collect();
        let mut sink_ok = vec![false; n];
        for (i, slot) in nodes.iter().enumerate() {
            let Some(b) = slot.behavior.as_ref() else {
                continue;
            };
            match b.fused_spec() {
                Some(FusedSpec::Ew {
                    instrs,
                    outputs,
                    reg_count,
                }) if !b.may_stall_on_alloc()
                    && !slot.ins.is_empty()
                    && outputs.len() == slot.outs.len()
                    && slot
                        .outs
                        .iter()
                        .all(|c| chans[c.0 as usize].capacity.is_none()) =>
                {
                    ew_spec[i] = Some((instrs, outputs, reg_count));
                }
                Some(FusedSpec::Sink) if slot.ins.len() == 1 => sink_ok[i] = true,
                _ => {}
            }
        }

        // Straight-line chaining: i → j when i's single output channel has
        // exactly the producer {i} and consumer {j}, and j's single input
        // is that channel. Both ends must be fusable element-wise stages.
        let mut succ: Vec<Option<u32>> = vec![None; n];
        let mut has_pred = vec![false; n];
        for (i, slot) in nodes.iter().enumerate() {
            if ew_spec[i].is_none() || slot.outs.len() != 1 {
                continue;
            }
            let c = slot.outs[0].0 as usize;
            let (p, s) = (&prods[c], &cons[c]);
            if p.len() != 1 || s.len() != 1 {
                continue;
            }
            let j = s[0] as usize;
            if j == i || ew_spec[j].is_none() || nodes[j].ins.len() != 1 {
                continue;
            }
            succ[i] = Some(j as u32);
            has_pred[j] = true;
        }

        // Walk chains from their heads. Fusable nodes on a pure cycle have
        // no head; they fall out of the walk and become singleton segments
        // below, which is always safe (a one-stage segment is just the
        // node's own semantics minus dispatch overhead).
        let mut kinds = vec![PlanKind::Boxed; n];
        let mut wake_target: Vec<u32> = (0..n as u32).collect();
        let mut seg_bounds: Vec<u32> = vec![0];
        let mut stages: Vec<Stage> = Vec::new();
        let mut ports: Vec<ChanId> = Vec::new();
        let mut micro: Vec<EwInstr> = Vec::new();
        let mut outs: Vec<PlanOut> = Vec::new();
        let mut assigned = vec![false; n];
        let mut stats = PlanStats {
            nodes: n,
            ..PlanStats::default()
        };

        let mut emit_segment = |head: usize,
                                ew_spec: &mut Vec<Option<EwLowering>>,
                                kinds: &mut Vec<PlanKind>,
                                wake_target: &mut Vec<u32>,
                                assigned: &mut Vec<bool>| {
            let seg = seg_bounds.len() as u32 - 1;
            let mut i = head;
            let mut seg_len = 0usize;
            loop {
                assigned[i] = true;
                kinds[i] = PlanKind::Seg(seg);
                wake_target[i] = head as u32;
                let (instrs, specs, reg_count) = ew_spec[i].take().expect("walk stays fusable");
                let slot = &nodes[i];
                let next = succ[i].filter(|&j| !assigned[j as usize]);
                let ins = (ports.len() as u32, (ports.len() + slot.ins.len()) as u32);
                ports.extend_from_slice(&slot.ins);
                let ir = (micro.len() as u32, (micro.len() + instrs.len()) as u32);
                micro.extend(instrs);
                let or = (outs.len() as u32, (outs.len() + specs.len()) as u32);
                for (o, spec) in specs.into_iter().enumerate() {
                    outs.push(PlanOut {
                        slots: spec.slots.into_boxed_slice(),
                        pred: spec.pred,
                        strip_barriers: spec.strip_barriers,
                        chan: slot.outs[o],
                        // The forwarding edge to the chained next stage is
                        // drained within this same firing — no wake needed.
                        wake: next.is_none(),
                    });
                }
                stages.push(Stage {
                    node: i as u32,
                    ins,
                    instrs: ir,
                    outs: or,
                    reg_count,
                });
                seg_len += 1;
                stats.fused_ew += 1;
                match next {
                    Some(j) => i = j as usize,
                    None => break,
                }
            }
            seg_bounds.push(stages.len() as u32);
            stats.segments += 1;
            stats.longest_segment = stats.longest_segment.max(seg_len);
        };

        for i in 0..n {
            if ew_spec[i].is_some() && !has_pred[i] {
                emit_segment(i, &mut ew_spec, &mut kinds, &mut wake_target, &mut assigned);
            }
        }
        // Cycle leftovers: fusable but every member has a predecessor.
        for i in 0..n {
            if ew_spec[i].is_some() && !assigned[i] {
                emit_segment(i, &mut ew_spec, &mut kinds, &mut wake_target, &mut assigned);
            }
        }
        for i in 0..n {
            if assigned[i] {
                continue;
            }
            if sink_ok[i] {
                kinds[i] = PlanKind::Sink(nodes[i].ins[0]);
                stats.fused_sinks += 1;
            } else {
                stats.boxed += 1;
            }
        }

        // Flatten the endpoint lists into offset+data arrays.
        let flatten = |lists: &[Vec<u32>]| {
            let mut off = Vec::with_capacity(lists.len() + 1);
            let mut data = Vec::new();
            off.push(0u32);
            for l in lists {
                data.extend_from_slice(l);
                off.push(data.len() as u32);
            }
            (data, off)
        };
        let (consumers, cons_off) = flatten(&cons);
        let (producers, prod_off) = flatten(&prods);

        let max_regs = stages
            .iter()
            .map(|s| s.reg_count as usize)
            .max()
            .unwrap_or(0);
        let max_in = nodes.iter().map(|s| s.ins.len()).max().unwrap_or(0);
        let max_out = nodes.iter().map(|s| s.outs.len()).max().unwrap_or(0);

        ExecPlan {
            node_count: n,
            chan_count: chans.len(),
            kinds,
            wake_target,
            seg_bounds,
            stages,
            ports,
            micro,
            outs,
            consumers,
            cons_off,
            producers,
            prod_off,
            alloc_waiters,
            max_regs,
            max_in,
            max_out,
            stats,
        }
    }

    /// Static shape counters (how much of the graph runs fused).
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    #[inline]
    fn consumers_of(&self, c: ChanId) -> &[u32] {
        let i = c.0 as usize;
        &self.consumers[self.cons_off[i] as usize..self.cons_off[i + 1] as usize]
    }

    #[inline]
    fn producers_of(&self, c: ChanId) -> &[u32] {
        let i = c.0 as usize;
        &self.producers[self.prod_off[i] as usize..self.prod_off[i + 1] as usize]
    }

    /// Runs `g` to quiescence under this plan. See
    /// [`Graph::run_untimed_planned`].
    ///
    /// # Errors
    ///
    /// Shape mismatch (plan built for different wiring), node protocol
    /// errors, the round cap, or a deadlock diagnosis — the latter three
    /// formatted identically to the interpreted executors.
    pub fn run(&self, g: &mut Graph, max_rounds: u64) -> Result<ExecReport, MachineError> {
        self.run_obs(g, max_rounds, ObsSink::noop())
    }

    /// [`ExecPlan::run`] with an observability sink: dispatches, segment
    /// fires, sink drains, classified wakes, and per-node stall attribution
    /// are recorded into `obs`. The no-op sink costs one predictable branch
    /// per event site (the `exec_bench --baseline` CI gate pins this).
    ///
    /// # Errors
    ///
    /// Same as [`ExecPlan::run`].
    pub fn run_obs(
        &self,
        g: &mut Graph,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<ExecReport, MachineError> {
        let mut resume = ResumeState::new();
        let (report, _) = self.run_core(g, &mut resume, false, max_rounds, obs)?;
        Ok(report)
    }

    /// [`ExecPlan::run_obs`] in suspend-at-quiescence mode: leftover
    /// tokens yield [`RunStatus::Paused`] (channel rings and node state
    /// stay live for the next feed) instead of a deadlock error. The same
    /// [`ResumeState`] must drive every run of one streaming session; a
    /// fresh state makes the first run seed every node exactly like
    /// [`ExecPlan::run_obs`].
    ///
    /// # Errors
    ///
    /// Shape mismatch, node protocol errors, or the round cap. Leftover
    /// tokens are the `Paused` status, not an error.
    pub fn run_resumable_obs(
        &self,
        g: &mut Graph,
        resume: &mut ResumeState,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<(ExecReport, RunStatus), MachineError> {
        self.run_core(g, resume, true, max_rounds, obs)
    }

    fn run_core(
        &self,
        g: &mut Graph,
        resume: &mut ResumeState,
        suspend_at_quiescence: bool,
        max_rounds: u64,
        obs: &ObsSink,
    ) -> Result<(ExecReport, RunStatus), MachineError> {
        if g.node_count() != self.node_count || g.chan_count() != self.chan_count {
            return Err(MachineError::new(format!(
                "execution plan shape mismatch: plan for {} nodes/{} chans, graph has {}/{}",
                self.node_count,
                self.chan_count,
                g.node_count(),
                g.chan_count()
            )));
        }
        let n = self.node_count;

        // Capture sink handles up front (behaviors stay boxed; the fused
        // path only needs the shared buffer).
        let mut sinks: Vec<Option<SinkHandle>> = vec![None; n];
        for (i, kind) in self.kinds.iter().enumerate() {
            if let PlanKind::Sink(_) = kind {
                let b = g.nodes()[i].behavior.as_ref().ok_or_else(|| MachineError {
                    node: Some(g.nodes()[i].label.clone()),
                    message: "planned run started while a behavior is checked out".into(),
                })?;
                sinks[i] = Some(b.sink_handle().ok_or_else(|| MachineError {
                    node: Some(g.nodes()[i].label.clone()),
                    message: "plan is stale: sink node no longer exposes a handle".into(),
                })?);
            }
        }

        let mut regs = vec![Word::ZERO; self.max_regs];
        let mut ib = vec![PortBudget::UNLIMITED; self.max_in];
        let mut ob = vec![PortBudget::UNLIMITED; self.max_out];
        let mut events = IoEvents::default();
        let mut report = ExecReport::default();

        // First run seeds every node (the one-shot behavior); a resumed
        // run re-seeds only what can make progress: consumers of non-empty
        // channels, allocator waiters, and nodes with internal pending
        // input (fed sources) — mirroring the interpreter's rule, mapped
        // through `wake_target` so segment members cost one bit.
        let mut ws = WakeSet::new(n);
        if !resume.take_started() {
            for i in 0..n as u32 {
                ws.seed(self.wake_target[i as usize]);
            }
        } else {
            for ci in 0..self.chan_count {
                if !g.chans()[ci].is_empty() {
                    for &c in self.consumers_of(ChanId(ci as u32)) {
                        ws.seed(self.wake_target[c as usize]);
                    }
                }
            }
            for &w in &self.alloc_waiters {
                ws.seed(self.wake_target[w as usize]);
            }
            for (i, slot) in g.nodes().iter().enumerate() {
                if slot
                    .behavior
                    .as_ref()
                    .is_some_and(|b| b.pending_input_tokens() > 0)
                {
                    ws.seed(self.wake_target[i]);
                }
            }
        }

        loop {
            if report.rounds >= max_rounds {
                return Err(MachineError::new(format!(
                    "no quiescence after {max_rounds} rounds (livelock or huge workload)"
                )));
            }
            report.rounds += 1;
            let ready: u64 = ws.cur.iter().map(|w| w.count_ones() as u64).sum();
            report.peak_ready = report.peak_ready.max(ready);
            obs.round(ready);
            for w in 0..ws.cur.len() {
                while ws.cur[w] != 0 {
                    let b = ws.cur[w].trailing_zeros();
                    ws.cur[w] &= ws.cur[w] - 1;
                    let i = w * 64 + b as usize;
                    report.steps += 1;
                    let progressed = match self.kinds[i] {
                        PlanKind::Seg(s) => {
                            let p = self.fire_segment(s, g, &mut regs, &mut ws, obs)?;
                            if p {
                                let stages =
                                    self.seg_bounds[s as usize + 1] - self.seg_bounds[s as usize];
                                obs.segment_fire(s, stages);
                            }
                            p
                        }
                        PlanKind::Sink(c) => {
                            let p = self.fire_sink(
                                c,
                                sinks[i].as_ref().expect("captured"),
                                g,
                                &mut ws,
                                obs,
                            );
                            if p {
                                obs.sink_drain();
                            }
                            p
                        }
                        PlanKind::Boxed => self.fire_boxed(
                            i as u32,
                            g,
                            &mut ib,
                            &mut ob,
                            &mut events,
                            &mut ws,
                            obs,
                        )?,
                    };
                    if progressed {
                        report.productive_steps += 1;
                    }
                    obs.node_dispatch(i as u32, progressed);
                    if !progressed && obs.is_enabled() {
                        obs.stall(i as u32, g.classify_stall(NodeId(i as u32)));
                    }
                }
            }
            if ws.next_count == 0 {
                break;
            }
            std::mem::swap(&mut ws.cur, &mut ws.next);
            ws.next_count = 0;
        }

        // Quiescent: every channel with a consumer should be drained.
        // Under suspension leftover tokens are a pause, not a deadlock.
        let stuck = self.stuck_channels_report(g);
        if stuck.is_empty() {
            return Ok((report, RunStatus::Finished));
        }
        if suspend_at_quiescence {
            return Ok((report, RunStatus::Paused));
        }
        Err(MachineError::new(format!(
            "deadlock at quiescence: {}",
            stuck.join("; ")
        )))
    }

    /// Fallback firing: identical to the interpreter's inner loop — budget
    /// refresh, traced step, event-driven wakes.
    fn fire_boxed(
        &self,
        i: u32,
        g: &mut Graph,
        ib: &mut [PortBudget],
        ob: &mut [PortBudget],
        events: &mut IoEvents,
        ws: &mut WakeSet,
        obs: &ObsSink,
    ) -> Result<bool, MachineError> {
        let idx = i as usize;
        let n_in = g.nodes()[idx].ins.len();
        let n_out = g.nodes()[idx].outs.len();
        for b in &mut ib[..n_in] {
            *b = PortBudget::UNLIMITED;
        }
        for b in &mut ob[..n_out] {
            *b = PortBudget::UNLIMITED;
        }
        let allocs_before = g.mem.alloc_push_ops();
        let progressed =
            g.step_node_traced(NodeId(i), &mut ib[..n_in], &mut ob[..n_out], events)?;
        for &c in &events.pushed {
            obs.channel_push(c.0);
            for &w in self.consumers_of(c) {
                let t = self.wake_target[w as usize];
                if ws.wake(t) {
                    obs.wake(t, WakeCause::TokenArrival);
                }
            }
        }
        for &c in &events.freed {
            for &w in self.producers_of(c) {
                let t = self.wake_target[w as usize];
                if ws.wake(t) {
                    obs.wake(t, WakeCause::CapacityRelease);
                }
            }
        }
        if g.mem.alloc_push_ops() != allocs_before {
            for &w in &self.alloc_waiters {
                let t = self.wake_target[w as usize];
                if ws.wake(t) {
                    obs.wake(t, WakeCause::AllocatorPush);
                }
            }
        }
        Ok(progressed)
    }

    /// Fused sink firing: drain the input channel into the handle under
    /// one lock.
    fn fire_sink(
        &self,
        c: ChanId,
        handle: &SinkHandle,
        g: &mut Graph,
        ws: &mut WakeSet,
        obs: &ObsSink,
    ) -> bool {
        let (chans, _) = g.chans_and_mem_mut();
        let chan = &mut chans[c.0 as usize];
        if chan.is_empty() {
            return false;
        }
        let was_full = chan.room() == 0;
        handle.collect_from(std::iter::from_fn(|| chan.pop()));
        obs.channel_pop(c.0);
        if was_full {
            for &w in self.producers_of(c) {
                let t = self.wake_target[w as usize];
                if ws.wake(t) {
                    obs.wake(t, WakeCause::CapacityRelease);
                }
            }
        }
        true
    }

    /// Fires a whole fused segment: stages run in chain order, each
    /// draining its input channels exactly as [`crate::nodes::EwNode`]
    /// would. Interior forwarding channels are filled by stage `k` and
    /// drained by stage `k+1` within this same call.
    fn fire_segment(
        &self,
        seg: u32,
        g: &mut Graph,
        regs: &mut [Word],
        ws: &mut WakeSet,
        obs: &ObsSink,
    ) -> Result<bool, MachineError> {
        let allocs_before = g.mem.alloc_push_ops();
        let range =
            self.seg_bounds[seg as usize] as usize..self.seg_bounds[seg as usize + 1] as usize;
        let mut progressed = false;
        for st in &self.stages[range] {
            progressed |= self.fire_stage(st, g, regs, ws, obs)?;
        }
        // Fused micro-ops may AllocPush (returns are non-stalling); that
        // state change is invisible on the channel network, so mirror the
        // interpreter's allocator wake.
        if g.mem.alloc_push_ops() != allocs_before {
            for &w in &self.alloc_waiters {
                let t = self.wake_target[w as usize];
                if ws.wake(t) {
                    obs.wake(t, WakeCause::AllocatorPush);
                }
            }
        }
        Ok(progressed)
    }

    /// One stage's firing loop — the fused replica of `EwNode::step` with
    /// a reused scratch register window and direct channel access.
    fn fire_stage(
        &self,
        st: &Stage,
        g: &mut Graph,
        regs: &mut [Word],
        ws: &mut WakeSet,
        obs: &ObsSink,
    ) -> Result<bool, MachineError> {
        let ins = &self.ports[st.ins.0 as usize..st.ins.1 as usize];
        let instrs = &self.micro[st.instrs.0 as usize..st.instrs.1 as usize];
        let outs = &self.outs[st.outs.0 as usize..st.outs.1 as usize];
        let regs = &mut regs[..st.reg_count as usize];
        let (chans, mem, slots) = g.split_mut();
        let mut progressed = false;
        'outer: loop {
            // Classify all input fronts.
            let mut min_bar: Option<BarrierLevel> = None;
            let mut all_data = true;
            for &c in ins {
                match chans[c.0 as usize].front() {
                    None => break 'outer,
                    Some(Tok::Data(_)) => {}
                    Some(Tok::Barrier(l)) => {
                        all_data = false;
                        min_bar = Some(min_bar.map_or(*l, |m: BarrierLevel| m.min(*l)));
                    }
                }
            }
            if all_data {
                // Eligibility guarantees unbounded outputs and no
                // allocator stalls: commit unconditionally.
                regs.fill(Word::ZERO);
                let mut cursor = 0usize;
                for &c in ins {
                    let chan = &mut chans[c.0 as usize];
                    let was_full = chan.room() == 0;
                    match chan.pop().expect("front checked") {
                        Tok::Data(vals) => {
                            for v in vals {
                                regs[cursor] = v;
                                cursor += 1;
                            }
                        }
                        Tok::Barrier(_) => unreachable!("front changed between peek and pop"),
                    }
                    if was_full {
                        for &w in self.producers_of(c) {
                            let t = self.wake_target[w as usize];
                            if ws.wake(t) {
                                obs.wake(t, WakeCause::CapacityRelease);
                            }
                        }
                    }
                }
                exec_instrs(instrs, regs, mem);
                for o in outs {
                    let fire = o
                        .pred
                        .map_or(true, |(r, expect)| regs[r as usize].as_bool() == expect);
                    if fire {
                        let tuple: Vec<Word> = o.slots.iter().map(|&s| regs[s as usize]).collect();
                        chans[o.chan.0 as usize].push(Tok::Data(tuple));
                        if o.wake {
                            for &w in self.consumers_of(o.chan) {
                                let t = self.wake_target[w as usize];
                                if ws.wake(t) {
                                    obs.wake(t, WakeCause::TokenArrival);
                                }
                            }
                        }
                    }
                }
                progressed = true;
            } else {
                // Mixed data/barrier fronts are a structure mismatch, the
                // same hard error the interpreted node raises.
                for (i, &c) in ins.iter().enumerate() {
                    if chans[c.0 as usize].front().is_some_and(|t| t.is_data()) {
                        return Err(MachineError {
                            node: Some(slots[st.node as usize].label.clone()),
                            message: format!(
                                "zip structure mismatch: input {i} has data while another \
                                 input has a barrier"
                            ),
                        });
                    }
                }
                let level = min_bar.expect("at least one barrier front");
                for &c in ins {
                    let chan = &mut chans[c.0 as usize];
                    if chan.front().and_then(|t| t.barrier_level()) == Some(level) {
                        let was_full = chan.room() == 0;
                        chan.pop();
                        if was_full {
                            for &w in self.producers_of(c) {
                                let t = self.wake_target[w as usize];
                                if ws.wake(t) {
                                    obs.wake(t, WakeCause::CapacityRelease);
                                }
                            }
                        }
                    }
                }
                for o in outs {
                    if !o.strip_barriers {
                        chans[o.chan.0 as usize].push(Tok::Barrier(level));
                        if o.wake {
                            for &w in self.consumers_of(o.chan) {
                                let t = self.wake_target[w as usize];
                                if ws.wake(t) {
                                    obs.wake(t, WakeCause::TokenArrival);
                                }
                            }
                        }
                    }
                }
                progressed = true;
            }
        }
        Ok(progressed)
    }

    /// The plan-side copy of the interpreter's stuck-channel diagnosis
    /// (same message format), using the flattened consumer lists.
    fn stuck_channels_report(&self, g: &Graph) -> Vec<String> {
        let mut stuck = Vec::new();
        for (ci, chan) in g.chans().iter().enumerate() {
            if chan.is_empty() {
                continue;
            }
            let consumers = self.consumers_of(ChanId(ci as u32));
            if consumers.is_empty() {
                continue;
            }
            let labels: Vec<&str> = consumers
                .iter()
                .map(|&i| g.nodes()[i as usize].label.as_str())
                .collect();
            stuck.push(format!(
                "channel #{ci} -> '{}': {} tokens pending",
                labels.join(", "),
                chan.len()
            ));
        }
        stuck
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::instr::{AluOp, Operand};
    use crate::nodes::{EwNode, SinkNode, SourceNode};
    use crate::tuple::{tbar, tdata, TTok};

    fn add_one() -> EwNode {
        EwNode::new(
            1,
            vec![EwInstr::Alu {
                op: AluOp::Add,
                a: Operand::Reg(0),
                b: Operand::imm(1u32),
                dst: 1,
            }],
            vec![OutputSpec::plain([1])],
        )
    }

    /// src → ew ×3 → sink, optionally with a bounded middle channel.
    fn chain(bounded_mid: Option<usize>) -> (Graph, crate::nodes::SinkHandle) {
        let mut g = Graph::new();
        let toks: Vec<TTok> = (0..8u32).map(|i| tdata([i])).chain([tbar(1)]).collect();
        let mut prev = g.add_chan(Channel::new(1));
        g.add_node("src", Box::new(SourceNode::new(toks)), vec![], vec![prev]);
        for i in 0..3 {
            let mut c = Channel::new(1);
            if i == 1 {
                if let Some(cap) = bounded_mid {
                    c = c.with_capacity(cap);
                }
            }
            let next = g.add_chan(c);
            g.add_node(
                format!("stage{i}"),
                Box::new(add_one()),
                vec![prev],
                vec![next],
            );
            prev = next;
        }
        let (sink, h) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![prev], vec![]);
        (g, h)
    }

    #[test]
    fn fused_pipeline_matches_interpreted() {
        let (mut gi, hi) = chain(None);
        let ri = gi.run_untimed(10_000).unwrap();
        let (mut gp, hp) = chain(None);
        let plan = ExecPlan::build(&gp);
        let stats = plan.stats();
        assert_eq!(stats.fused_ew, 3, "all three stages fuse");
        assert_eq!(stats.segments, 1, "one straight-line segment");
        assert_eq!(stats.longest_segment, 3);
        assert_eq!(stats.fused_sinks, 1);
        assert_eq!(stats.boxed, 1, "only the source stays boxed");
        let rp = gp.run_untimed_planned(&plan, 10_000).unwrap();
        assert_eq!(hi.tokens(), hp.tokens());
        assert!(rp.productive_steps > 0);
        assert!(
            rp.steps < ri.steps,
            "planned dispatches ({}) should undercut interpreted ({})",
            rp.steps,
            ri.steps
        );
    }

    #[test]
    fn bounded_output_falls_back_but_still_runs() {
        // A bounded middle channel disqualifies its producer stage from
        // fusing (fused pushes skip room checks); the plan must still
        // finish via the boxed fallback with back-pressure wakes.
        let (mut gi, hi) = chain(Some(1));
        gi.run_untimed(10_000).unwrap();
        let (mut gp, hp) = chain(Some(1));
        let plan = ExecPlan::build(&gp);
        assert!(
            plan.stats().boxed >= 2,
            "source + the bounded-output stage stay boxed: {:?}",
            plan.stats()
        );
        gp.run_untimed_planned(&plan, 10_000).unwrap();
        assert_eq!(hi.tokens(), hp.tokens());
    }

    #[test]
    fn filtered_and_stripped_outputs_fuse() {
        // A two-output stage (filter partition, one side stripping
        // barriers) fuses as a singleton segment; both sinks fuse too.
        let build = || {
            let mut g = Graph::new();
            let c0 = g.add_chan(Channel::new(1));
            let lo = g.add_chan(Channel::new(1));
            let hi = g.add_chan(Channel::new(1));
            let toks: Vec<TTok> = (0..10u32).map(|i| tdata([i])).chain([tbar(1)]).collect();
            g.add_node("src", Box::new(SourceNode::new(toks)), vec![], vec![c0]);
            let split = EwNode::new(
                1,
                vec![EwInstr::Alu {
                    op: AluOp::LtU,
                    a: Operand::Reg(0),
                    b: Operand::imm(5u32),
                    dst: 1,
                }],
                vec![
                    OutputSpec::filtered([0], 1, true),
                    OutputSpec {
                        slots: vec![0],
                        pred: Some((1, false)),
                        strip_barriers: true,
                    },
                ],
            );
            g.add_node("split", Box::new(split), vec![c0], vec![lo, hi]);
            let (s0, h0) = SinkNode::new();
            g.add_node("sink.lo", Box::new(s0), vec![lo], vec![]);
            let (s1, h1) = SinkNode::new();
            g.add_node("sink.hi", Box::new(s1), vec![hi], vec![]);
            (g, h0, h1)
        };
        let (mut gi, i0, i1) = build();
        gi.run_untimed(10_000).unwrap();
        let (mut gp, p0, p1) = build();
        let plan = ExecPlan::build(&gp);
        assert_eq!(plan.stats().fused_ew, 1);
        assert_eq!(plan.stats().fused_sinks, 2);
        gp.run_untimed_planned(&plan, 10_000).unwrap();
        assert_eq!(i0.tokens(), p0.tokens());
        assert_eq!(i1.tokens(), p1.tokens());
        assert!(!p1.tokens().iter().any(|t| t.is_barrier()), "stripped side");
    }

    #[test]
    fn zip_head_waits_for_lockstep() {
        let build = || {
            let mut g = Graph::new();
            let a = g.add_chan(Channel::new(1));
            let b = g.add_chan(Channel::new(1));
            let out = g.add_chan(Channel::new(2));
            g.add_node(
                "src.a",
                Box::new(SourceNode::new(vec![tdata([1u32]), tdata([2u32]), tbar(1)])),
                vec![],
                vec![a],
            );
            g.add_node(
                "src.b",
                Box::new(SourceNode::new(vec![
                    tdata([10u32]),
                    tdata([20u32]),
                    tbar(1),
                ])),
                vec![],
                vec![b],
            );
            g.add_node(
                "zip",
                Box::new(EwNode::passthrough(2)),
                vec![a, b],
                vec![out],
            );
            let (sink, h) = SinkNode::new();
            g.add_node("sink", Box::new(sink), vec![out], vec![]);
            (g, h)
        };
        let (mut gi, hi) = build();
        gi.run_untimed(10_000).unwrap();
        let (mut gp, hp) = build();
        let plan = ExecPlan::build(&gp);
        assert_eq!(plan.stats().fused_ew, 1, "a zip head fuses too");
        gp.run_untimed_planned(&plan, 10_000).unwrap();
        assert_eq!(hi.tokens(), hp.tokens());
        assert_eq!(
            hp.tokens(),
            vec![tdata([1u32, 10u32]), tdata([2u32, 20u32]), tbar(1)]
        );
    }

    #[test]
    fn alloc_stalling_stage_stays_boxed_and_matches() {
        let build = || {
            let mut g = Graph::new();
            let a = g.mem.add_alloc("bufs", 2);
            let c0 = g.add_chan(Channel::new(1));
            let c1 = g.add_chan(Channel::new(1));
            g.add_node(
                "src",
                Box::new(SourceNode::new(vec![tdata([7u32]), tdata([8u32]), tbar(1)])),
                vec![],
                vec![c0],
            );
            let alloc_stage = EwNode::new(
                1,
                vec![EwInstr::AllocPop { alloc: a, dst: 1 }],
                vec![OutputSpec::plain([1])],
            );
            g.add_node("alloc", Box::new(alloc_stage), vec![c0], vec![c1]);
            let (sink, h) = SinkNode::new();
            g.add_node("sink", Box::new(sink), vec![c1], vec![]);
            (g, h)
        };
        let (mut gi, hi) = build();
        gi.run_untimed(10_000).unwrap();
        let (mut gp, hp) = build();
        let plan = ExecPlan::build(&gp);
        assert_eq!(
            plan.stats().fused_ew,
            0,
            "AllocPop stages must not fuse (stall check needs the boxed path)"
        );
        gp.run_untimed_planned(&plan, 10_000).unwrap();
        assert_eq!(hi.tokens(), hp.tokens());
        assert_eq!(gi.mem.dram, gp.mem.dram);
    }

    #[test]
    fn planned_deadlock_matches_interpreted_diagnosis() {
        let build = || {
            let mut g = Graph::new();
            let c0 = g.add_chan(Channel::new(1));
            let c1 = g.add_chan(Channel::new(1));
            let c2 = g.add_chan(Channel::new(2));
            g.add_node(
                "src",
                Box::new(SourceNode::new(vec![tdata([1u32])])),
                vec![],
                vec![c0],
            );
            g.add_node(
                "zip",
                Box::new(EwNode::passthrough(2)),
                vec![c0, c1],
                vec![c2],
            );
            let (sink, _h) = SinkNode::new();
            g.add_node("sink", Box::new(sink), vec![c2], vec![]);
            g
        };
        let ei = build().run_untimed(100).unwrap_err();
        let mut gp = build();
        let plan = ExecPlan::build(&gp);
        let ep = gp.run_untimed_planned(&plan, 100).unwrap_err();
        assert_eq!(ei, ep, "identical deadlock diagnosis");
        assert!(ep.message.contains("deadlock"), "got: {ep}");
    }

    #[test]
    fn planned_round_cap_reported() {
        let (mut g, _h) = chain(None);
        let plan = ExecPlan::build(&g);
        let err = g.run_untimed_planned(&plan, 0).unwrap_err();
        assert!(err.message.contains("no quiescence"), "got: {err}");
    }

    #[test]
    fn plan_shape_mismatch_is_an_error() {
        let (g, _h) = chain(None);
        let plan = ExecPlan::build(&g);
        let mut other = Graph::new();
        let c = other.add_chan(Channel::new(1));
        other.add_node(
            "src",
            Box::new(SourceNode::new(vec![tdata([1u32])])),
            vec![],
            vec![c],
        );
        let err = other.run_untimed_planned(&plan, 100).unwrap_err();
        assert!(err.message.contains("shape mismatch"), "got: {err}");
    }

    #[test]
    fn plan_reusable_across_fresh_instances() {
        let (mut template, _h) = chain(None);
        template.finalize_topology();
        let plan = ExecPlan::build(&template);
        for _ in 0..3 {
            let mut inst = template.fresh_instance();
            inst.run_untimed_planned(&plan, 10_000).unwrap();
            let h = inst
                .nodes()
                .iter()
                .find_map(|s| s.behavior.as_ref().unwrap().sink_handle())
                .expect("instance has a sink");
            let toks = h.tokens();
            assert_eq!(toks.len(), 9, "8 data + 1 barrier");
            assert_eq!(toks[0], tdata([3u32]), "0 + 1+1+1 through the segment");
        }
    }

    #[test]
    fn self_loop_segment_parity_with_interpreted() {
        // A zip whose second input is its own output (seeded with one
        // token): the chain rule must not mark the backedge as internal,
        // and both executors must agree — including on the final
        // leftover-token deadlock diagnosis.
        let build = || {
            let mut g = Graph::new();
            let a = g.add_chan(Channel::new(1));
            let loopback = g.add_chan(Channel::new(1).without_canonicalization());
            let out = g.add_chan(Channel::new(1));
            g.add_node(
                "src",
                Box::new(SourceNode::new(vec![
                    tdata([1u32]),
                    tdata([2u32]),
                    tdata([3u32]),
                ])),
                vec![],
                vec![a],
            );
            // acc' = acc + x; emits acc' to both the loop and the sink.
            let acc = EwNode::new(
                2,
                vec![EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(0),
                    b: Operand::Reg(1),
                    dst: 2,
                }],
                vec![OutputSpec::plain([2]), OutputSpec::plain([2])],
            );
            g.add_node("acc", Box::new(acc), vec![a, loopback], vec![loopback, out]);
            g.chan_mut(loopback).push(tdata([0u32])); // seed
            let (sink, h) = SinkNode::new();
            g.add_node("sink", Box::new(sink), vec![out], vec![]);
            (g, h)
        };
        let (mut gi, hi) = build();
        let ei = gi.run_untimed(10_000);
        let (mut gp, hp) = build();
        let plan = ExecPlan::build(&gp);
        let ep = gp.run_untimed_planned(&plan, 10_000);
        // The seeded loop token survives the run on both paths: identical
        // diagnosis, identical sink streams, identical leftovers.
        assert_eq!(ei.unwrap_err(), ep.unwrap_err());
        assert_eq!(hi.tokens(), hp.tokens());
        assert_eq!(
            hp.tokens(),
            vec![tdata([1u32]), tdata([3u32]), tdata([6u32])]
        );
        assert_eq!(
            gi.chan_mut(ChanId(1)).drain_all(),
            gp.chan_mut(ChanId(1)).drain_all()
        );
    }
}
