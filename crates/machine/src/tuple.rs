//! Thread tuples: the live values of one dataflow thread.
//!
//! §II b of the paper: "every thread is simply a set of live values that are
//! kept together in the pipeline". On-chip, each live value travels on its own
//! physical link, but links belonging to one logical edge are consumed in
//! lockstep and merges keep them atomic (§III-B c). We therefore model a
//! logical edge as a stream of *tuples*; physical resource accounting
//! multiplies by the tuple arity.

use revet_sltf::{BarrierLevel, Tok, Word};

/// The live values of one dataflow thread on one logical edge.
pub type Tuple = Vec<Word>;

/// A tuple-stream token: one thread's live values, or a barrier Ωn.
pub type TTok = Tok<Tuple>;

/// Builds a data token from word-like values.
///
/// ```
/// use revet_machine::tdata;
/// let t = tdata([1u32, 2]);
/// assert!(t.is_data());
/// ```
pub fn tdata<I, W>(vals: I) -> TTok
where
    I: IntoIterator<Item = W>,
    W: Into<Word>,
{
    Tok::Data(vals.into_iter().map(Into::into).collect())
}

/// Builds a barrier token Ωn.
///
/// # Panics
///
/// Panics unless `1 <= n <= 15`.
pub fn tbar(n: u8) -> TTok {
    Tok::Barrier(BarrierLevel::of(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(tdata([3u32]).data().unwrap(), &vec![Word(3)]);
        assert_eq!(tbar(2).barrier_level().unwrap().get(), 2);
    }
}
