//! On-chip links between streaming contexts.
//!
//! A [`Channel`] carries tuple tokens between two nodes. Channels know their
//! bandwidth class (§III-C: a scalar link moves one data element and one
//! barrier per cycle; a vector link moves up to 16 data elements and one
//! barrier) and opportunistically canonicalize barrier sequences on push —
//! an Ωm still queued at the tail is absorbed by a pushed Ωn (n > m) when
//! data directly preceded it, mirroring the paper's "Ω2 implies an Ω1"
//! encoding rule without ever *holding back* a token (which could deadlock
//! cyclic regions).

use crate::ring::Ring;
use crate::tuple::TTok;
use revet_sltf::Tok;

/// Bandwidth class of a link (§III-C).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LinkClass {
    /// Up to 16 data elements + 1 barrier per cycle; costs vector buffers.
    #[default]
    Vector,
    /// 1 data element + 1 barrier per cycle; costs scalar buffers.
    Scalar,
}

impl LinkClass {
    /// Data elements the link can move per cycle.
    pub const fn width(self) -> usize {
        match self {
            LinkClass::Vector => 16,
            LinkClass::Scalar => 1,
        }
    }
}

/// A FIFO link between two streaming contexts.
///
/// The queue is a power-of-two [`Ring`]: bounded channels pre-size their
/// storage at construction and never reallocate while the graph runs;
/// unbounded channels grow by doubling.
#[derive(Debug, Clone)]
pub struct Channel {
    queue: Ring<TTok>,
    /// Number of live values per tuple (physical link count of this edge).
    pub arity: usize,
    /// Bandwidth class used by the timed simulator and resource accounting.
    pub class: LinkClass,
    /// Maximum queued tokens (None = unbounded, the untimed default).
    pub capacity: Option<usize>,
    /// Opportunistic barrier canonicalization on push (see module docs).
    pub canonicalize: bool,
    /// Whether the token pushed immediately before the current tail barrier
    /// was a data token (tracked for the canonicalization rule).
    tail_preceded_by_data: bool,
    /// Total tokens ever pushed (for statistics).
    pushed: u64,
    /// Total data tokens ever pushed.
    pushed_data: u64,
}

impl Default for Channel {
    fn default() -> Self {
        Channel::new(1)
    }
}

impl Channel {
    /// Creates an unbounded vector channel of the given tuple arity.
    pub fn new(arity: usize) -> Self {
        Channel {
            queue: Ring::new(),
            arity,
            class: LinkClass::Vector,
            capacity: None,
            canonicalize: true,
            tail_preceded_by_data: false,
            pushed: 0,
            pushed_data: 0,
        }
    }

    /// Sets the bandwidth class (builder style).
    pub fn with_class(mut self, class: LinkClass) -> Self {
        self.class = class;
        self
    }

    /// Sets a capacity bound (builder style). The ring is pre-sized to the
    /// next power of two, so a bounded channel never reallocates mid-run.
    pub fn with_capacity(mut self, cap: usize) -> Self {
        self.capacity = Some(cap);
        if self.queue.is_empty() {
            self.queue = Ring::with_capacity(cap);
        }
        self
    }

    /// Disables push-side canonicalization (used on loop backedges, where the
    /// protocol wants to observe the explicit barrier sequence).
    pub fn without_canonicalization(mut self) -> Self {
        self.canonicalize = false;
        self
    }

    /// Tokens currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no tokens are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Free slots before the capacity bound (usize::MAX when unbounded).
    pub fn room(&self) -> usize {
        match self.capacity {
            Some(cap) => cap.saturating_sub(self.queue.len()),
            None => usize::MAX,
        }
    }

    /// The token at the front, if any.
    pub fn front(&self) -> Option<&TTok> {
        self.queue.front()
    }

    /// The token just behind the front, if any (merge realignment peeks it).
    pub fn second(&self) -> Option<&TTok> {
        self.queue.get(1)
    }

    /// Pops the front token.
    pub fn pop(&mut self) -> Option<TTok> {
        let t = self.queue.pop_front();
        if self.queue.is_empty() {
            // The canonicalization tail context is gone once drained.
            self.tail_preceded_by_data = false;
        }
        t
    }

    /// Pushes a token, applying opportunistic canonicalization.
    ///
    /// # Panics
    ///
    /// Panics if the channel is full; callers must check [`Channel::room`]
    /// first (nodes are written to do so).
    pub fn push(&mut self, tok: TTok) {
        assert!(self.room() > 0, "push into full channel");
        self.pushed += 1;
        match &tok {
            Tok::Data(vals) => {
                debug_assert_eq!(
                    vals.len(),
                    self.arity,
                    "tuple arity mismatch on channel (expected {}, got {})",
                    self.arity,
                    vals.len()
                );
                self.pushed_data += 1;
                self.queue.push_back(tok);
            }
            Tok::Barrier(level) => {
                if self.canonicalize {
                    if let Some(Tok::Barrier(tail)) = self.queue.back() {
                        if *tail < *level && self.tail_preceded_by_data {
                            // Ω(tail) is implied by Ω(level) after data: absorb.
                            self.queue.pop_back();
                            self.pushed -= 1; // did not actually add a token
                            self.queue.push_back(tok);
                            // `tail_preceded_by_data` stays true: the chain
                            // rule lets x Ω1 Ω2 Ω3 collapse to x Ω3.
                            return;
                        }
                    }
                }
                // The new tail is this barrier; record whether data directly
                // precedes it in the stream (the canonicalization condition).
                self.tail_preceded_by_data = matches!(self.queue.back(), Some(Tok::Data(_)));
                self.queue.push_back(tok);
            }
        }
    }

    /// Total tokens pushed over the channel's lifetime (after
    /// canonicalization absorbed implied barriers).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total data tokens pushed over the channel's lifetime.
    pub fn total_pushed_data(&self) -> u64 {
        self.pushed_data
    }

    /// Drains the remaining queue into a vector (test helper).
    pub fn drain_all(&mut self) -> Vec<TTok> {
        self.tail_preceded_by_data = false;
        self.queue.drain_all()
    }

    /// Approximate resident heap bytes of the queued tokens — per-session
    /// memory accounting for paused streaming instances.
    pub fn resident_bytes(&self) -> usize {
        (0..self.queue.len())
            .filter_map(|i| self.queue.get(i))
            .map(crate::node::token_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{tbar, tdata};

    #[test]
    fn fifo_order() {
        let mut c = Channel::new(1);
        c.push(tdata([1u32]));
        c.push(tdata([2u32]));
        assert_eq!(c.pop(), Some(tdata([1u32])));
        assert_eq!(c.pop(), Some(tdata([2u32])));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn canonicalizes_implied_barrier_after_data() {
        let mut c = Channel::new(1);
        c.push(tdata([1u32]));
        c.push(tbar(1));
        c.push(tbar(2));
        assert_eq!(c.drain_all(), vec![tdata([1u32]), tbar(2)]);
    }

    #[test]
    fn keeps_barrier_without_preceding_data() {
        let mut c = Channel::new(1);
        c.push(tbar(1));
        c.push(tbar(2));
        assert_eq!(c.drain_all(), vec![tbar(1), tbar(2)]);
    }

    #[test]
    fn keeps_equal_level_barriers() {
        let mut c = Channel::new(1);
        c.push(tdata([1u32]));
        c.push(tbar(1));
        c.push(tbar(1));
        assert_eq!(c.drain_all(), vec![tdata([1u32]), tbar(1), tbar(1)]);
    }

    #[test]
    fn chain_rule_collapses_runs() {
        let mut c = Channel::new(1);
        c.push(tdata([1u32]));
        c.push(tbar(1));
        c.push(tbar(2));
        c.push(tbar(3));
        assert_eq!(c.drain_all(), vec![tdata([1u32]), tbar(3)]);
    }

    #[test]
    fn no_merge_across_consumed_tail() {
        let mut c = Channel::new(1);
        c.push(tdata([1u32]));
        c.push(tbar(1));
        // Consumer drains everything…
        assert!(c.pop().is_some());
        assert!(c.pop().is_some());
        // …then a higher barrier arrives; nothing to absorb.
        c.push(tbar(2));
        assert_eq!(c.drain_all(), vec![tbar(2)]);
    }

    #[test]
    fn disabled_canonicalization() {
        let mut c = Channel::new(1).without_canonicalization();
        c.push(tdata([1u32]));
        c.push(tbar(1));
        c.push(tbar(2));
        assert_eq!(c.drain_all(), vec![tdata([1u32]), tbar(1), tbar(2)]);
    }

    #[test]
    fn capacity_and_room() {
        let mut c = Channel::new(1).with_capacity(2);
        assert_eq!(c.room(), 2);
        c.push(tdata([1u32]));
        assert_eq!(c.room(), 1);
        c.push(tdata([2u32]));
        assert_eq!(c.room(), 0);
    }

    #[test]
    #[should_panic(expected = "full channel")]
    fn overfull_push_panics() {
        let mut c = Channel::new(1).with_capacity(1);
        c.push(tdata([1u32]));
        c.push(tdata([2u32]));
    }

    #[test]
    fn capacity_one_channel_cycles() {
        // The tightest bounded link: one slot, filled and drained repeatedly
        // (the ring wraps many times without reallocating).
        let mut c = Channel::new(1).with_capacity(1);
        for i in 0..100u32 {
            assert_eq!(c.room(), 1);
            c.push(tdata([i]));
            assert_eq!(c.room(), 0);
            assert_eq!(c.pop(), Some(tdata([i])));
            assert!(c.is_empty());
        }
        assert_eq!(c.total_pushed(), 100);
    }

    #[test]
    fn bounded_channel_wraparound_preserves_order() {
        let mut c = Channel::new(1).with_capacity(3);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        // Keep the queue at 2/3 while head orbits the ring storage.
        c.push(tdata([next_in]));
        next_in += 1;
        c.push(tdata([next_in]));
        next_in += 1;
        for _ in 0..500 {
            c.push(tdata([next_in]));
            next_in += 1;
            assert_eq!(c.room(), 0);
            assert_eq!(c.pop(), Some(tdata([next_out])));
            next_out += 1;
        }
        assert_eq!(
            c.drain_all(),
            vec![tdata([next_out]), tdata([next_out + 1])]
        );
    }

    #[test]
    fn canonicalization_survives_wraparound() {
        // The absorb rule pops the ring's back slot; exercise it after the
        // ring has wrapped.
        let mut c = Channel::new(1);
        for i in 0..10u32 {
            c.push(tdata([i]));
            assert!(c.pop().is_some());
        }
        c.push(tdata([99u32]));
        c.push(tbar(1));
        c.push(tbar(2));
        assert_eq!(c.drain_all(), vec![tdata([99u32]), tbar(2)]);
    }

    #[test]
    fn stats_count_canonicalized_pushes_once() {
        let mut c = Channel::new(1);
        c.push(tdata([1u32]));
        c.push(tbar(1));
        c.push(tbar(2)); // absorbs Ω1
        assert_eq!(c.total_pushed(), 2);
        assert_eq!(c.total_pushed_data(), 1);
    }
}
