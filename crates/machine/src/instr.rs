//! The element-wise instruction set executed inside pipeline stages.
//!
//! §III-B a: element-wise operations transform live values one thread at a
//! time and never change thread ordering, hierarchy, or count. Memory
//! operations are element-wise too — "an allocation transforms a void value
//! into a pointer, a read transforms an address into a result, and a write
//! transforms an address and data into a void value". Memory ordering within
//! a thread is enforced with data-free void tokens threaded through the
//! operations (modelled as ordinary registers carrying no payload semantics).

use crate::mem::{AllocId, MemoryState, SramId};
use revet_sltf::Word;

/// A register index in a context's per-thread register file.
pub type Reg = u16;

/// An instruction operand: a register or an immediate word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// Read the per-thread register.
    Reg(Reg),
    /// An immediate constant.
    Const(Word),
}

impl Operand {
    /// Immediate from anything word-like.
    pub fn imm(v: impl Into<Word>) -> Operand {
        Operand::Const(v.into())
    }

    /// Evaluates the operand against a register file.
    #[inline]
    pub fn eval(self, regs: &[Word]) -> Word {
        match self {
            Operand::Reg(r) => regs[r as usize],
            Operand::Const(w) => w,
        }
    }
}

/// Binary ALU operations (32-bit lanes; comparison results are 0/1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Signed division; division by zero yields 0 (machine-defined).
    DivS,
    /// Unsigned division; division by zero yields 0.
    DivU,
    /// Signed remainder; by zero yields 0.
    RemS,
    /// Unsigned remainder; by zero yields 0.
    RemU,
    And,
    Or,
    Xor,
    /// Shift left (shift amount taken mod 32).
    Shl,
    /// Logical shift right.
    ShrU,
    /// Arithmetic shift right.
    ShrS,
    Eq,
    Ne,
    LtS,
    LtU,
    LeS,
    LeU,
    GtS,
    GtU,
    GeS,
    GeU,
    MinS,
    MinU,
    MaxS,
    MaxU,
    /// 32-bit rotate left (murmur3 uses this).
    Rotl,
}

impl AluOp {
    /// Applies the operation to two words.
    pub fn apply(self, a: Word, b: Word) -> Word {
        let (ua, ub) = (a.as_u32(), b.as_u32());
        let (sa, sb) = (a.as_i32(), b.as_i32());
        let bool_w = |v: bool| Word::from_bool(v);
        match self {
            AluOp::Add => Word(ua.wrapping_add(ub)),
            AluOp::Sub => Word(ua.wrapping_sub(ub)),
            AluOp::Mul => Word(ua.wrapping_mul(ub)),
            AluOp::DivS => Word::from_i32(if sb == 0 { 0 } else { sa.wrapping_div(sb) }),
            AluOp::DivU => Word(if ub == 0 { 0 } else { ua / ub }),
            AluOp::RemS => Word::from_i32(if sb == 0 { 0 } else { sa.wrapping_rem(sb) }),
            AluOp::RemU => Word(if ub == 0 { 0 } else { ua % ub }),
            AluOp::And => Word(ua & ub),
            AluOp::Or => Word(ua | ub),
            AluOp::Xor => Word(ua ^ ub),
            AluOp::Shl => Word(ua.wrapping_shl(ub)),
            AluOp::ShrU => Word(ua.wrapping_shr(ub)),
            AluOp::ShrS => Word::from_i32(sa.wrapping_shr(ub)),
            AluOp::Eq => bool_w(ua == ub),
            AluOp::Ne => bool_w(ua != ub),
            AluOp::LtS => bool_w(sa < sb),
            AluOp::LtU => bool_w(ua < ub),
            AluOp::LeS => bool_w(sa <= sb),
            AluOp::LeU => bool_w(ua <= ub),
            AluOp::GtS => bool_w(sa > sb),
            AluOp::GtU => bool_w(ua > ub),
            AluOp::GeS => bool_w(sa >= sb),
            AluOp::GeU => bool_w(ua >= ub),
            AluOp::MinS => Word::from_i32(sa.min(sb)),
            AluOp::MinU => Word(ua.min(ub)),
            AluOp::MaxS => Word::from_i32(sa.max(sb)),
            AluOp::MaxU => Word(ua.max(ub)),
            AluOp::Rotl => Word(ua.rotate_left(ub & 31)),
        }
    }

    /// True for ops that are associative and commutative (usable in
    /// reductions).
    pub fn is_reduction_compatible(self) -> bool {
        matches!(
            self,
            AluOp::Add
                | AluOp::Mul
                | AluOp::And
                | AluOp::Or
                | AluOp::Xor
                | AluOp::MinS
                | AluOp::MinU
                | AluOp::MaxS
                | AluOp::MaxU
        )
    }

    /// The identity element of a reduction-compatible op (the accumulator's
    /// initial value, and the result for empty dimensions).
    ///
    /// # Panics
    ///
    /// Panics for non-reduction ops.
    pub fn reduction_identity(self) -> Word {
        match self {
            AluOp::Add | AluOp::Or | AluOp::Xor | AluOp::MaxU => Word(0),
            AluOp::Mul => Word(1),
            AluOp::And => Word(u32::MAX),
            AluOp::MinU => Word(u32::MAX),
            AluOp::MinS => Word::from_i32(i32::MAX),
            AluOp::MaxS => Word::from_i32(i32::MIN),
            other => panic!("{other:?} is not a reduction operator"),
        }
    }
}

/// A predicate on a memory operation: run the op iff `reg != 0` equals
/// `expect`. Predication is how if-to-select conversion handles memory side
/// effects (§V-B c).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pred {
    /// The register holding the condition.
    pub reg: Reg,
    /// Required truthiness of the condition.
    pub expect: bool,
}

impl Pred {
    /// Evaluates the predicate.
    #[inline]
    pub fn holds(self, regs: &[Word]) -> bool {
        regs[self.reg as usize].as_bool() == self.expect
    }
}

/// One element-wise instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EwInstr {
    /// `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination register.
        dst: Reg,
    },
    /// `dst = c ? t : f` (conditional move; §V-B c if-to-select).
    Select {
        /// Condition operand (non-zero = true).
        c: Operand,
        /// Value when true.
        t: Operand,
        /// Value when false.
        f: Operand,
        /// Destination register.
        dst: Reg,
    },
    /// `dst = src`.
    Mov {
        /// Source operand.
        src: Operand,
        /// Destination register.
        dst: Reg,
    },
    /// SRAM word read: `dst = sram[addr]`; predicated-off reads yield 0.
    SramRead {
        /// SRAM region.
        region: SramId,
        /// Word address within the region.
        addr: Operand,
        /// Destination register.
        dst: Reg,
        /// Optional predicate.
        pred: Option<Pred>,
    },
    /// SRAM word write: `sram[addr] = val`.
    SramWrite {
        /// SRAM region.
        region: SramId,
        /// Word address within the region.
        addr: Operand,
        /// Value to store.
        val: Operand,
        /// Optional predicate.
        pred: Option<Pred>,
    },
    /// Atomic `sram[addr] -= 1; dst = new value` (hierarchy elimination,
    /// Fig. 9).
    SramDecFetch {
        /// SRAM region.
        region: SramId,
        /// Word address within the region.
        addr: Operand,
        /// Destination register receiving the post-decrement value.
        dst: Reg,
        /// Optional predicate (predicated-off yields 0 without touching
        /// memory).
        pred: Option<Pred>,
    },
    /// DRAM word read through an AG: `dst = dram[addr..addr+4]` (byte
    /// address, little endian).
    DramReadW {
        /// Byte address.
        addr: Operand,
        /// Destination register.
        dst: Reg,
        /// Optional predicate.
        pred: Option<Pred>,
    },
    /// DRAM word write through an AG.
    DramWriteW {
        /// Byte address.
        addr: Operand,
        /// Value to store.
        val: Operand,
        /// Optional predicate.
        pred: Option<Pred>,
    },
    /// DRAM byte read (string workloads).
    DramReadB {
        /// Byte address.
        addr: Operand,
        /// Destination register (zero-extended byte).
        dst: Reg,
        /// Optional predicate.
        pred: Option<Pred>,
    },
    /// DRAM byte write.
    DramWriteB {
        /// Byte address.
        addr: Operand,
        /// Value to store (low byte).
        val: Operand,
        /// Optional predicate.
        pred: Option<Pred>,
    },
    /// Pops a buffer pointer from an allocator queue (blocking; never
    /// predicated — the stall is the load-balancing mechanism of §V-B b).
    AllocPop {
        /// Allocator queue.
        alloc: AllocId,
        /// Destination register receiving the pointer.
        dst: Reg,
    },
    /// Returns a buffer pointer to an allocator queue.
    AllocPush {
        /// Allocator queue.
        alloc: AllocId,
        /// The pointer to free.
        src: Operand,
        /// Optional predicate.
        pred: Option<Pred>,
    },
}

impl EwInstr {
    /// The allocator this instruction pops from, if any (used for stall
    /// checks before committing to consume an input tuple).
    pub fn alloc_pop_id(&self) -> Option<AllocId> {
        match self {
            EwInstr::AllocPop { alloc, .. } => Some(*alloc),
            _ => None,
        }
    }

    /// Highest register index referenced plus one (for sizing reg files).
    pub fn max_reg(&self) -> u16 {
        fn op_reg(o: &Operand) -> u16 {
            match o {
                Operand::Reg(r) => r + 1,
                Operand::Const(_) => 0,
            }
        }
        let pred_reg = |p: &Option<Pred>| p.map_or(0, |p| p.reg + 1);
        match self {
            EwInstr::Alu { a, b, dst, .. } => op_reg(a).max(op_reg(b)).max(dst + 1),
            EwInstr::Select { c, t, f, dst } => {
                op_reg(c).max(op_reg(t)).max(op_reg(f)).max(dst + 1)
            }
            EwInstr::Mov { src, dst } => op_reg(src).max(dst + 1),
            EwInstr::SramRead {
                addr, dst, pred, ..
            }
            | EwInstr::SramDecFetch {
                addr, dst, pred, ..
            }
            | EwInstr::DramReadW { addr, dst, pred }
            | EwInstr::DramReadB { addr, dst, pred } => {
                op_reg(addr).max(dst + 1).max(pred_reg(pred))
            }
            EwInstr::SramWrite {
                addr, val, pred, ..
            }
            | EwInstr::DramWriteW { addr, val, pred }
            | EwInstr::DramWriteB { addr, val, pred } => {
                op_reg(addr).max(op_reg(val)).max(pred_reg(pred))
            }
            EwInstr::AllocPop { dst, .. } => dst + 1,
            EwInstr::AllocPush { src, pred, .. } => op_reg(src).max(pred_reg(pred)),
        }
    }

    /// True if this instruction touches memory (used by the splitter: every
    /// memory operation goes into its own context, §V-D b).
    pub fn is_memory(&self) -> bool {
        !matches!(
            self,
            EwInstr::Alu { .. } | EwInstr::Select { .. } | EwInstr::Mov { .. }
        )
    }
}

/// Executes a straight-line instruction sequence for one thread.
///
/// `regs` must be pre-sized and pre-loaded with the input tuple; results are
/// left in the registers named by the instructions.
pub fn exec_instrs(instrs: &[EwInstr], regs: &mut [Word], mem: &mut MemoryState) {
    for ins in instrs {
        match ins {
            EwInstr::Alu { op, a, b, dst } => {
                regs[*dst as usize] = op.apply(a.eval(regs), b.eval(regs));
            }
            EwInstr::Select { c, t, f, dst } => {
                regs[*dst as usize] = if c.eval(regs).as_bool() {
                    t.eval(regs)
                } else {
                    f.eval(regs)
                };
            }
            EwInstr::Mov { src, dst } => {
                regs[*dst as usize] = src.eval(regs);
            }
            EwInstr::SramRead {
                region,
                addr,
                dst,
                pred,
            } => {
                regs[*dst as usize] = if pred.map_or(true, |p| p.holds(regs)) {
                    mem.sram_read(*region, addr.eval(regs).as_u32())
                } else {
                    Word::ZERO
                };
            }
            EwInstr::SramWrite {
                region,
                addr,
                val,
                pred,
            } => {
                if pred.map_or(true, |p| p.holds(regs)) {
                    mem.sram_write(*region, addr.eval(regs).as_u32(), val.eval(regs));
                }
            }
            EwInstr::SramDecFetch {
                region,
                addr,
                dst,
                pred,
            } => {
                regs[*dst as usize] = if pred.map_or(true, |p| p.holds(regs)) {
                    let a = addr.eval(regs).as_u32();
                    let new = Word(mem.sram_read(*region, a).as_u32().wrapping_sub(1));
                    mem.sram_write(*region, a, new);
                    new
                } else {
                    Word::ZERO
                };
            }
            EwInstr::DramReadW { addr, dst, pred } => {
                regs[*dst as usize] = if pred.map_or(true, |p| p.holds(regs)) {
                    mem.dram_read_word(addr.eval(regs).as_u32())
                } else {
                    Word::ZERO
                };
            }
            EwInstr::DramWriteW { addr, val, pred } => {
                if pred.map_or(true, |p| p.holds(regs)) {
                    mem.dram_write_word(addr.eval(regs).as_u32(), val.eval(regs));
                }
            }
            EwInstr::DramReadB { addr, dst, pred } => {
                regs[*dst as usize] = if pred.map_or(true, |p| p.holds(regs)) {
                    mem.dram_read_byte(addr.eval(regs).as_u32())
                } else {
                    Word::ZERO
                };
            }
            EwInstr::DramWriteB { addr, val, pred } => {
                if pred.map_or(true, |p| p.holds(regs)) {
                    mem.dram_write_byte(addr.eval(regs).as_u32(), val.eval(regs));
                }
            }
            EwInstr::AllocPop { alloc, dst } => {
                // Availability was checked before input consumption; an empty
                // queue here is an executor bug.
                let ptr = mem
                    .alloc_pop(*alloc)
                    .expect("AllocPop on empty queue: stall check missed");
                regs[*dst as usize] = Word(ptr);
            }
            EwInstr::AllocPush { alloc, src, pred } => {
                if pred.map_or(true, |p| p.holds(regs)) {
                    mem.alloc_push(*alloc, src.eval(regs).as_u32());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        let w = |v: i32| Word::from_i32(v);
        assert_eq!(AluOp::Add.apply(w(2), w(3)), w(5));
        assert_eq!(AluOp::Sub.apply(w(2), w(3)), w(-1));
        assert_eq!(AluOp::Mul.apply(w(-2), w(3)), w(-6));
        assert_eq!(AluOp::DivS.apply(w(-7), w(2)), w(-3));
        assert_eq!(AluOp::DivU.apply(w(7), w(2)), w(3));
        assert_eq!(AluOp::DivS.apply(w(1), w(0)), w(0), "div by zero is 0");
        assert_eq!(AluOp::RemS.apply(w(-7), w(2)), w(-1));
        assert_eq!(AluOp::LtS.apply(w(-1), w(0)), w(1));
        assert_eq!(AluOp::LtU.apply(w(-1), w(0)), w(0), "unsigned -1 is huge");
        assert_eq!(AluOp::ShrS.apply(w(-8), w(1)), w(-4));
        assert_eq!(AluOp::ShrU.apply(w(-8), w(1)), Word(0x7FFFFFFC));
        assert_eq!(AluOp::MinS.apply(w(-1), w(1)), w(-1));
        assert_eq!(AluOp::MaxU.apply(w(-1), w(1)), w(-1), "unsigned max");
        assert_eq!(AluOp::Rotl.apply(Word(0x80000001), Word(1)), Word(3));
    }

    #[test]
    fn overflow_wraps() {
        assert_eq!(
            AluOp::Add.apply(Word(u32::MAX), Word(1)),
            Word(0),
            "wrapping add"
        );
        assert_eq!(AluOp::Mul.apply(Word(1 << 31), Word(2)), Word(0));
    }

    #[test]
    fn exec_straightline() {
        let mut mem = MemoryState::default();
        let mut regs = vec![Word::ZERO; 4];
        regs[0] = Word(10);
        exec_instrs(
            &[
                EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(0),
                    b: Operand::imm(5u32),
                    dst: 1,
                },
                EwInstr::Select {
                    c: Operand::Reg(1),
                    t: Operand::imm(7u32),
                    f: Operand::imm(9u32),
                    dst: 2,
                },
                EwInstr::Mov {
                    src: Operand::Reg(2),
                    dst: 3,
                },
            ],
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs[1], Word(15));
        assert_eq!(regs[2], Word(7));
        assert_eq!(regs[3], Word(7));
    }

    #[test]
    fn predicated_memory_ops() {
        let mut mem = MemoryState::default();
        let s = mem.add_sram("s", 4);
        let mut regs = vec![Word::ZERO; 4];
        regs[0] = Word(0); // predicate: false
        exec_instrs(
            &[EwInstr::SramWrite {
                region: s,
                addr: Operand::imm(0u32),
                val: Operand::imm(99u32),
                pred: Some(Pred {
                    reg: 0,
                    expect: true,
                }),
            }],
            &mut regs,
            &mut mem,
        );
        assert_eq!(mem.sram_read(s, 0), Word(0), "write suppressed");
        regs[0] = Word(1);
        exec_instrs(
            &[EwInstr::SramWrite {
                region: s,
                addr: Operand::imm(0u32),
                val: Operand::imm(99u32),
                pred: Some(Pred {
                    reg: 0,
                    expect: true,
                }),
            }],
            &mut regs,
            &mut mem,
        );
        assert_eq!(mem.sram_read(s, 0), Word(99));
    }

    #[test]
    fn dec_fetch_returns_new_value() {
        let mut mem = MemoryState::default();
        let s = mem.add_sram("count", 1);
        mem.sram_write(s, 0, Word(2));
        let mut regs = vec![Word::ZERO; 1];
        let dec = EwInstr::SramDecFetch {
            region: s,
            addr: Operand::imm(0u32),
            dst: 0,
            pred: None,
        };
        exec_instrs(std::slice::from_ref(&dec), &mut regs, &mut mem);
        assert_eq!(regs[0], Word(1));
        exec_instrs(std::slice::from_ref(&dec), &mut regs, &mut mem);
        assert_eq!(regs[0], Word(0), "last thread sees zero and survives");
    }

    #[test]
    fn max_reg_sizes() {
        let i = EwInstr::Alu {
            op: AluOp::Add,
            a: Operand::Reg(3),
            b: Operand::imm(1u32),
            dst: 7,
        };
        assert_eq!(i.max_reg(), 8);
        assert!(!i.is_memory());
        assert!(EwInstr::DramReadW {
            addr: Operand::Reg(0),
            dst: 1,
            pred: None
        }
        .is_memory());
    }
}
