//! A power-of-two ring buffer — the channel queue of the execution fast
//! path.
//!
//! [`Ring`] replaces `VecDeque` under every [`crate::Channel`]. Its storage
//! length is always a power of two, so front/back indexing is a mask (no
//! branch, no modulo), and a channel created with a capacity bound
//! pre-sizes its ring to the next power of two — a bounded channel never
//! reallocates while the graph runs. Unbounded channels grow by doubling,
//! which keeps the mask invariant.

/// A growable FIFO over power-of-two storage with mask indexing.
///
/// Invariants: `buf.len()` is zero or a power of two; `len <= buf.len()`;
/// element `i` (0 = front) lives at `buf[(head + i) & mask]`.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: Box<[Option<T>]>,
    head: usize,
    len: usize,
}

impl<T> Default for Ring<T> {
    fn default() -> Self {
        Ring::new()
    }
}

impl<T> Ring<T> {
    const MIN_POW2: usize = 4;

    /// An empty ring with no storage (first push allocates).
    pub fn new() -> Self {
        Ring {
            buf: Box::new([]),
            head: 0,
            len: 0,
        }
    }

    /// An empty ring pre-sized to hold at least `cap` elements without
    /// reallocating (rounded up to a power of two).
    pub fn with_capacity(cap: usize) -> Self {
        let n = cap.max(Self::MIN_POW2).next_power_of_two();
        Ring {
            buf: (0..n).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    /// Elements currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots available before the next reallocation.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.buf.len().wrapping_sub(1)
    }

    /// Doubles storage, re-packing elements so the front lands at slot 0.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.buf.len() * 2).max(Self::MIN_POW2);
        let mut buf: Box<[Option<T>]> = (0..new_cap).map(|_| None).collect();
        let mask = self.mask();
        for (i, slot) in buf.iter_mut().enumerate().take(self.len) {
            *slot = self.buf[(self.head + i) & mask].take();
        }
        self.buf = buf;
        self.head = 0;
    }

    /// Appends an element at the back.
    pub fn push_back(&mut self, v: T) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let idx = (self.head + self.len) & self.mask();
        debug_assert!(self.buf[idx].is_none());
        self.buf[idx] = Some(v);
        self.len += 1;
    }

    /// Removes and returns the front element.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.head].take();
        debug_assert!(v.is_some());
        self.head = (self.head + 1) & self.mask();
        self.len -= 1;
        v
    }

    /// Removes and returns the back element (barrier canonicalization
    /// absorbs the queued tail in place).
    pub fn pop_back(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let idx = (self.head + self.len) & self.mask();
        let v = self.buf[idx].take();
        debug_assert!(v.is_some());
        v
    }

    /// The front element, if any.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.buf[self.head].as_ref()
        }
    }

    /// The back element, if any.
    #[inline]
    pub fn back(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.buf[(self.head + self.len - 1) & self.mask()].as_ref()
        }
    }

    /// The element `i` positions behind the front, if present.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            None
        } else {
            self.buf[(self.head + i) & self.mask()].as_ref()
        }
    }

    /// Iterates front to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len).map(|i| self.get(i).expect("index < len"))
    }

    /// Drains every element, front to back.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(v) = self.pop_front() {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_without_storage() {
        let r: Ring<u32> = Ring::new();
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.front(), None);
        assert_eq!(r.back(), None);
        assert_eq!(r.get(0), None);
    }

    #[test]
    fn fifo_order_with_growth() {
        let mut r = Ring::new();
        for i in 0..100u32 {
            r.push_back(i);
        }
        assert_eq!(r.len(), 100);
        assert!(r.capacity().is_power_of_two());
        for i in 0..100u32 {
            assert_eq!(r.front(), Some(&i));
            assert_eq!(r.pop_front(), Some(i));
        }
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn wraparound_across_many_cycles() {
        // Interleave pushes and pops so head orbits the storage repeatedly
        // without ever growing past the initial power of two.
        let mut r = Ring::with_capacity(4);
        let cap = r.capacity();
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..1000 {
            r.push_back(next_in);
            next_in += 1;
            r.push_back(next_in);
            next_in += 1;
            assert_eq!(r.pop_front(), Some(next_out));
            next_out += 1;
            assert_eq!(r.pop_front(), Some(next_out));
            next_out += 1;
        }
        assert!(r.is_empty());
        assert_eq!(r.capacity(), cap, "steady-state traffic must not grow");
    }

    #[test]
    fn full_and_empty_boundaries() {
        let mut r = Ring::with_capacity(3); // rounds up to 4
        assert_eq!(r.capacity(), 4);
        for i in 0..4u32 {
            r.push_back(i);
        }
        assert_eq!(r.len(), 4);
        // One more forces a doubling, preserving order.
        r.push_back(4);
        assert_eq!(r.capacity(), 8);
        assert_eq!(r.drain_all(), vec![0, 1, 2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.pop_back(), None);
    }

    #[test]
    fn capacity_one_semantics() {
        // MIN_POW2 keeps physical storage ≥ 4, but logical single-slot use
        // (push, pop, push …) must behave like a 1-deep FIFO.
        let mut r = Ring::with_capacity(1);
        for i in 0..10u32 {
            r.push_back(i);
            assert_eq!(r.len(), 1);
            assert_eq!(r.front(), Some(&i));
            assert_eq!(r.back(), Some(&i));
            assert_eq!(r.pop_front(), Some(i));
            assert!(r.is_empty());
        }
    }

    #[test]
    fn pop_back_and_indexing() {
        let mut r = Ring::with_capacity(4);
        r.push_back(1u32);
        r.push_back(2);
        r.push_back(3);
        assert_eq!(r.get(0), Some(&1));
        assert_eq!(r.get(1), Some(&2));
        assert_eq!(r.get(2), Some(&3));
        assert_eq!(r.get(3), None);
        assert_eq!(r.pop_back(), Some(3));
        assert_eq!(r.back(), Some(&2));
        r.push_back(9);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2, 9]);
    }

    #[test]
    fn growth_repacks_wrapped_contents() {
        let mut r = Ring::with_capacity(4);
        // Wrap head partway around, then force a grow with a wrapped layout.
        for i in 0..4u32 {
            r.push_back(i);
        }
        r.pop_front();
        r.pop_front();
        r.push_back(4);
        r.push_back(5); // storage full again, head in the middle
        r.push_back(6); // grow
        assert_eq!(r.drain_all(), vec![2, 3, 4, 5, 6]);
    }
}
