//! Graph-level reproductions of the paper's Figures 2–4, plus the nested
//! compositions (§III-B) that Aurochs's timeout scheme could not support.

use revet_machine::instr::{AluOp, EwInstr, Operand};
use revet_machine::nodes::{
    BroadcastNode, CounterNode, EwNode, FbMergeNode, FlattenNode, FwdMergeNode, OutputSpec,
    ReduceNode, SinkNode, SourceNode,
};
use revet_machine::{tbar, tdata, Channel, Graph, TTok};
use revet_sltf::Tok;

fn data_ids(tokens: &[TTok]) -> Vec<u32> {
    tokens
        .iter()
        .filter_map(|t| t.data().map(|v| v[0].as_u32()))
        .collect()
}

/// Figure 2: a `foreach` loop — counter expands a 1-D thread tensor into 2-D,
/// element-wise work happens inside, reduction contracts it back to 1-D.
#[test]
fn figure2_foreach_counter_reduce() {
    // A = [t1=3, t2=4]: each thread's value is its child count.
    let mut g = Graph::new();
    let a = g.add_chan(Channel::new(1));
    let b = g.add_chan(Channel::new(1));
    let c = g.add_chan(Channel::new(1));
    let d = g.add_chan(Channel::new(1));
    g.add_node(
        "enter",
        Box::new(SourceNode::new(vec![tdata([3u32]), tdata([4u32]), tbar(1)])),
        vec![],
        vec![a],
    );
    g.add_node(
        "counter",
        Box::new(CounterNode::new(
            Operand::imm(0u32),
            Operand::Reg(0),
            Operand::imm(1u32),
        )),
        vec![a],
        vec![b],
    );
    // Element-wise op along edge B→C: square each index.
    g.add_node(
        "square",
        Box::new(EwNode::new(
            1,
            vec![EwInstr::Alu {
                op: AluOp::Mul,
                a: Operand::Reg(0),
                b: Operand::Reg(0),
                dst: 1,
            }],
            vec![OutputSpec::plain([1])],
        )),
        vec![b],
        vec![c],
    );
    g.add_node(
        "reduce",
        Box::new(ReduceNode::new(AluOp::Add, 0u32)),
        vec![c],
        vec![d],
    );
    let (sink, out) = SinkNode::new();
    g.add_node("exit", Box::new(sink), vec![d], vec![]);
    g.run_untimed(10_000).unwrap();
    // t1: 0²+1²+2² = 5; t2: 0²+1²+2²+3² = 14. Same dimensionality as A.
    assert_eq!(out.tokens(), vec![tdata([5u32]), tdata([14u32]), tbar(1)]);
}

/// Figure 2 with the parent value broadcast to children over the scalar
/// network (what Aurochs could not express).
#[test]
fn figure2_with_parent_broadcast() {
    let mut g = Graph::new();
    let a = g.add_chan(Channel::new(1));
    let child = g.add_chan(Channel::new(1));
    let parent = g.add_chan(Channel::new(1).with_class(revet_machine::LinkClass::Scalar));
    let joined = g.add_chan(Channel::new(2));
    let summed = g.add_chan(Channel::new(1));
    let d = g.add_chan(Channel::new(1));
    g.add_node(
        "enter",
        Box::new(SourceNode::new(vec![
            tdata([10u32]),
            tdata([20u32]),
            tbar(1),
        ])),
        vec![],
        vec![a],
    );
    // Counter: every thread spawns 2 children; parent value rides the
    // data-only scalar link.
    g.add_node(
        "counter",
        Box::new(
            CounterNode::new(Operand::imm(0u32), Operand::imm(2u32), Operand::imm(1u32))
                .with_data_only_parent(),
        ),
        vec![a],
        vec![child, parent],
    );
    g.add_node(
        "broadcast",
        Box::new(BroadcastNode::new(1)),
        vec![parent, child],
        vec![joined],
    );
    // child value = index + parent.
    g.add_node(
        "addp",
        Box::new(EwNode::new(
            2,
            vec![EwInstr::Alu {
                op: AluOp::Add,
                a: Operand::Reg(0),
                b: Operand::Reg(1),
                dst: 2,
            }],
            vec![OutputSpec::plain([2])],
        )),
        vec![joined],
        vec![summed],
    );
    g.add_node(
        "reduce",
        Box::new(ReduceNode::new(AluOp::Add, 0u32)),
        vec![summed],
        vec![d],
    );
    let (sink, out) = SinkNode::new();
    g.add_node("exit", Box::new(sink), vec![d], vec![]);
    g.run_untimed(10_000).unwrap();
    // t1: (0+10)+(1+10) = 21; t2: (0+20)+(1+20) = 41.
    assert_eq!(out.tokens(), vec![tdata([21u32]), tdata([41u32]), tbar(1)]);
}

/// Figure 3: an `if` statement — filter partitions threads onto two paths
/// (t3 takes the rare/slow path on a scalar link), forward merge rejoins.
#[test]
fn figure3_filter_merge_if() {
    let mut g = Graph::new();
    let a = g.add_chan(Channel::new(1));
    let b = g.add_chan(Channel::new(1).with_class(revet_machine::LinkClass::Scalar));
    let c = g.add_chan(Channel::new(1));
    let b_delayed = g.add_chan(Channel::new(1));
    let d = g.add_chan(Channel::new(1));
    g.add_node(
        "enter",
        Box::new(SourceNode::new(vec![
            tdata([1u32]),
            tdata([2u32]),
            tdata([3u32]),
            tdata([4u32]),
            tdata([5u32]),
            tbar(1),
        ])),
        vec![],
        vec![a],
    );
    // Filter: t == 3 → slow path B; else fast path C.
    g.add_node(
        "filter",
        Box::new(EwNode::new(
            1,
            vec![EwInstr::Alu {
                op: AluOp::Eq,
                a: Operand::Reg(0),
                b: Operand::imm(3u32),
                dst: 1,
            }],
            vec![
                OutputSpec::filtered([0], 1, true),
                OutputSpec::filtered([0], 1, false),
            ],
        )),
        vec![a],
        vec![b, c],
    );
    // The slow path does some work (identity here; the delay is structural).
    g.add_node(
        "delay",
        Box::new(EwNode::passthrough(1)),
        vec![b],
        vec![b_delayed],
    );
    g.add_node(
        "fwd-merge",
        Box::new(FwdMergeNode::new()),
        vec![b_delayed, c],
        vec![d],
    );
    let (sink, out) = SinkNode::new();
    g.add_node("exit", Box::new(sink), vec![d], vec![]);
    g.run_untimed(10_000).unwrap();

    let toks = out.tokens();
    assert_eq!(toks.last(), Some(&tbar(1)), "single merged barrier");
    let mut ids = data_ids(&toks);
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2, 3, 4, 5], "all threads exactly once");
}

/// Figure 4: a `while` loop via forward-backward merge. Iteration counts:
/// t1=2, t2=3, t3=1, t4=3; exit order follows completion (t3 first).
#[test]
fn figure4_fb_merge_while() {
    let mut g = Graph::new();
    // Tuples: [id, remaining].
    let a = g.add_chan(Channel::new(2));
    let body_in = g.add_chan(Channel::new(2));
    let body_out = g.add_chan(Channel::new(2));
    let back = g.add_chan(Channel::new(2).without_canonicalization());
    let exit_raw = g.add_chan(Channel::new(2));
    let d = g.add_chan(Channel::new(2));
    g.add_node(
        "enter",
        Box::new(SourceNode::new(vec![
            tdata([1u32, 2]),
            tdata([2u32, 3]),
            tdata([3u32, 1]),
            tdata([4u32, 3]),
            tbar(1),
        ])),
        vec![],
        vec![a],
    );
    g.add_node(
        "loop-head",
        Box::new(FbMergeNode::new()),
        vec![a, back],
        vec![body_in],
    );
    // Body: remaining -= 1.
    g.add_node(
        "body",
        Box::new(EwNode::new(
            2,
            vec![EwInstr::Alu {
                op: AluOp::Sub,
                a: Operand::Reg(1),
                b: Operand::imm(1u32),
                dst: 1,
            }],
            vec![OutputSpec::plain([0, 1])],
        )),
        vec![body_in],
        vec![body_out],
    );
    // Back-filter: remaining > 0 → backedge; else → exit edge.
    g.add_node(
        "backfilter",
        Box::new(EwNode::new(
            2,
            vec![EwInstr::Alu {
                op: AluOp::GtS,
                a: Operand::Reg(1),
                b: Operand::imm(0u32),
                dst: 2,
            }],
            vec![
                OutputSpec::filtered([0, 1], 2, true),
                OutputSpec::filtered([0, 1], 2, false),
            ],
        )),
        vec![body_out],
        vec![back, exit_raw],
    );
    // Exit edge lowers all barriers one level (drops the reserved Ω1s).
    g.add_node(
        "exit-strip",
        Box::new(FlattenNode::new()),
        vec![exit_raw],
        vec![d],
    );
    let (sink, out) = SinkNode::new();
    g.add_node("exit", Box::new(sink), vec![d], vec![]);
    g.run_untimed(10_000).unwrap();

    let toks = out.tokens();
    // D = [t3, t1, t2, t4], Ωn — completion order, original level restored.
    assert_eq!(data_ids(&toks), vec![3, 1, 2, 4]);
    assert_eq!(toks.last(), Some(&tbar(1)));
    assert_eq!(
        toks.iter().filter(|t| t.is_barrier()).count(),
        1,
        "wave barriers eliminated at the exit edge"
    );
}

/// Two back-to-back tensors through one while loop: the loop header must
/// fully drain the first tensor before admitting the second (§III-B d).
#[test]
fn fb_merge_back_to_back_tensors() {
    let mut g = Graph::new();
    let a = g.add_chan(Channel::new(2));
    let body_in = g.add_chan(Channel::new(2));
    let body_out = g.add_chan(Channel::new(2));
    let back = g.add_chan(Channel::new(2).without_canonicalization());
    let exit_raw = g.add_chan(Channel::new(2));
    let d = g.add_chan(Channel::new(2));
    g.add_node(
        "enter",
        Box::new(SourceNode::new(vec![
            tdata([1u32, 3]),
            tbar(1), // tensor 1: one thread, 3 iterations
            tdata([2u32, 1]),
            tdata([3u32, 2]),
            tbar(1), // tensor 2: two threads
        ])),
        vec![],
        vec![a],
    );
    g.add_node(
        "head",
        Box::new(FbMergeNode::new()),
        vec![a, back],
        vec![body_in],
    );
    g.add_node(
        "body",
        Box::new(EwNode::new(
            2,
            vec![EwInstr::Alu {
                op: AluOp::Sub,
                a: Operand::Reg(1),
                b: Operand::imm(1u32),
                dst: 1,
            }],
            vec![OutputSpec::plain([0, 1])],
        )),
        vec![body_in],
        vec![body_out],
    );
    g.add_node(
        "backfilter",
        Box::new(EwNode::new(
            2,
            vec![EwInstr::Alu {
                op: AluOp::GtS,
                a: Operand::Reg(1),
                b: Operand::imm(0u32),
                dst: 2,
            }],
            vec![
                OutputSpec::filtered([0, 1], 2, true),
                OutputSpec::filtered([0, 1], 2, false),
            ],
        )),
        vec![body_out],
        vec![back, exit_raw],
    );
    g.add_node(
        "strip",
        Box::new(FlattenNode::new()),
        vec![exit_raw],
        vec![d],
    );
    let (sink, out) = SinkNode::new();
    g.add_node("exit", Box::new(sink), vec![d], vec![]);
    g.run_untimed(10_000).unwrap();

    let toks = out.tokens();
    // Tensor boundaries must be preserved: t1 then Ω1, then {t2,t3} then Ω1.
    let positions: Vec<String> = toks
        .iter()
        .map(|t| match t {
            Tok::Data(v) => format!("t{}", v[0].as_u32()),
            Tok::Barrier(l) => format!("Ω{}", l.get()),
        })
        .collect();
    let joined = positions.join(" ");
    assert!(
        joined == "t1 Ω1 t2 t3 Ω1" || joined == "t1 Ω1 t3 t2 Ω1",
        "tensors stay separated, got: {joined}"
    );
}

/// Nested while loops — the case that broke Aurochs's timeout heuristic.
/// Outer loop: o countdown; on each outer iteration an inner loop runs
/// `inner0` times. Verified against a scalar reference.
#[test]
fn nested_while_loops_compose() {
    // Tuples: [id, o, acc]; inner adds [i] slot.
    let mut g = Graph::new();
    let a = g.add_chan(Channel::new(3));
    let outer_in = g.add_chan(Channel::new(3));
    let inner_entry = g.add_chan(Channel::new(4));
    let inner_in = g.add_chan(Channel::new(4));
    let inner_out = g.add_chan(Channel::new(4));
    let inner_back = g.add_chan(Channel::new(4).without_canonicalization());
    let inner_exit_raw = g.add_chan(Channel::new(4));
    let inner_done = g.add_chan(Channel::new(4));
    let outer_out = g.add_chan(Channel::new(3));
    let outer_back = g.add_chan(Channel::new(3).without_canonicalization());
    let outer_exit_raw = g.add_chan(Channel::new(3));
    let d = g.add_chan(Channel::new(3));

    g.add_node(
        "enter",
        Box::new(SourceNode::new(vec![
            tdata([1u32, 3, 0]),
            tdata([2u32, 2, 0]),
            tbar(1),
        ])),
        vec![],
        vec![a],
    );
    g.add_node(
        "outer-head",
        Box::new(FbMergeNode::new()),
        vec![a, outer_back],
        vec![outer_in],
    );
    // Outer body prefix: i = o (inner trip count).
    g.add_node(
        "set-i",
        Box::new(EwNode::new(
            3,
            vec![EwInstr::Mov {
                src: Operand::Reg(1),
                dst: 3,
            }],
            vec![OutputSpec::plain([0, 1, 2, 3])],
        )),
        vec![outer_in],
        vec![inner_entry],
    );
    g.add_node(
        "inner-head",
        Box::new(FbMergeNode::new()),
        vec![inner_entry, inner_back],
        vec![inner_in],
    );
    // Inner body: acc += 1; i -= 1.
    g.add_node(
        "inner-body",
        Box::new(EwNode::new(
            4,
            vec![
                EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(2),
                    b: Operand::imm(1u32),
                    dst: 2,
                },
                EwInstr::Alu {
                    op: AluOp::Sub,
                    a: Operand::Reg(3),
                    b: Operand::imm(1u32),
                    dst: 3,
                },
            ],
            vec![OutputSpec::plain([0, 1, 2, 3])],
        )),
        vec![inner_in],
        vec![inner_out],
    );
    g.add_node(
        "inner-backfilter",
        Box::new(EwNode::new(
            4,
            vec![EwInstr::Alu {
                op: AluOp::GtS,
                a: Operand::Reg(3),
                b: Operand::imm(0u32),
                dst: 4,
            }],
            vec![
                OutputSpec::filtered([0, 1, 2, 3], 4, true),
                OutputSpec::filtered([0, 1, 2, 3], 4, false),
            ],
        )),
        vec![inner_out],
        vec![inner_back, inner_exit_raw],
    );
    g.add_node(
        "inner-strip",
        Box::new(FlattenNode::new()),
        vec![inner_exit_raw],
        vec![inner_done],
    );
    // Outer body suffix: o -= 1; drop the i slot.
    g.add_node(
        "dec-o",
        Box::new(EwNode::new(
            4,
            vec![EwInstr::Alu {
                op: AluOp::Sub,
                a: Operand::Reg(1),
                b: Operand::imm(1u32),
                dst: 1,
            }],
            vec![OutputSpec::plain([0, 1, 2])],
        )),
        vec![inner_done],
        vec![outer_out],
    );
    g.add_node(
        "outer-backfilter",
        Box::new(EwNode::new(
            3,
            vec![EwInstr::Alu {
                op: AluOp::GtS,
                a: Operand::Reg(1),
                b: Operand::imm(0u32),
                dst: 3,
            }],
            vec![
                OutputSpec::filtered([0, 1, 2], 3, true),
                OutputSpec::filtered([0, 1, 2], 3, false),
            ],
        )),
        vec![outer_out],
        vec![outer_back, outer_exit_raw],
    );
    g.add_node(
        "outer-strip",
        Box::new(FlattenNode::new()),
        vec![outer_exit_raw],
        vec![d],
    );
    let (sink, out) = SinkNode::new();
    g.add_node("exit", Box::new(sink), vec![d], vec![]);
    g.run_untimed(100_000).unwrap();

    // Reference: for o0: acc = sum over o in o0..=1 of o = o0(o0+1)/2.
    let toks = out.tokens();
    let mut results: Vec<(u32, u32)> = toks
        .iter()
        .filter_map(|t| t.data().map(|v| (v[0].as_u32(), v[2].as_u32())))
        .collect();
    results.sort_unstable();
    assert_eq!(results, vec![(1, 6), (2, 3)], "triangular iteration counts");
    assert_eq!(toks.last(), Some(&tbar(1)));
}

/// A foreach nested inside a while body (paper: "an if statement can contain
/// a parallel-patterns foreach loop on one of its branches" — here we nest
/// counter/reduce directly inside a recirculating region).
#[test]
fn foreach_inside_while_body() {
    // Each loop iteration computes acc += sum(0..3) and decrements o.
    let mut g = Graph::new();
    let a = g.add_chan(Channel::new(2)); // [o, acc]
    let body_in = g.add_chan(Channel::new(2));
    let child = g.add_chan(Channel::new(1));
    let parent = g.add_chan(Channel::new(2));
    let partial = g.add_chan(Channel::new(1));
    let rejoin = g.add_chan(Channel::new(3));
    let body_out = g.add_chan(Channel::new(2));
    let back = g.add_chan(Channel::new(2).without_canonicalization());
    let exit_raw = g.add_chan(Channel::new(2));
    let d = g.add_chan(Channel::new(2));

    g.add_node(
        "enter",
        Box::new(SourceNode::new(vec![tdata([2u32, 0]), tbar(1)])),
        vec![],
        vec![a],
    );
    g.add_node(
        "head",
        Box::new(FbMergeNode::new()),
        vec![a, back],
        vec![body_in],
    );
    // foreach(3): counter + sum-reduce, with the thread state bypassing on
    // the parent port (barriers kept for the rejoin zip).
    g.add_node(
        "counter",
        Box::new(CounterNode::new(
            Operand::imm(0u32),
            Operand::imm(3u32),
            Operand::imm(1u32),
        )),
        vec![body_in],
        vec![child, parent],
    );
    g.add_node(
        "reduce",
        Box::new(ReduceNode::new(AluOp::Add, 0u32)),
        vec![child],
        vec![partial],
    );
    // Rejoin: zip the reduced value with the bypassed thread state.
    g.add_node(
        "rejoin",
        Box::new(EwNode::passthrough(3)),
        vec![partial, parent],
        vec![rejoin],
    );
    // acc += partial; o -= 1. Tuple layout after zip: [partial, o, acc].
    g.add_node(
        "update",
        Box::new(EwNode::new(
            3,
            vec![
                EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(2),
                    b: Operand::Reg(0),
                    dst: 2,
                },
                EwInstr::Alu {
                    op: AluOp::Sub,
                    a: Operand::Reg(1),
                    b: Operand::imm(1u32),
                    dst: 1,
                },
            ],
            vec![OutputSpec::plain([1, 2])],
        )),
        vec![rejoin],
        vec![body_out],
    );
    g.add_node(
        "backfilter",
        Box::new(EwNode::new(
            2,
            vec![EwInstr::Alu {
                op: AluOp::GtS,
                a: Operand::Reg(0),
                b: Operand::imm(0u32),
                dst: 2,
            }],
            vec![
                OutputSpec::filtered([0, 1], 2, true),
                OutputSpec::filtered([0, 1], 2, false),
            ],
        )),
        vec![body_out],
        vec![back, exit_raw],
    );
    g.add_node(
        "strip",
        Box::new(FlattenNode::new()),
        vec![exit_raw],
        vec![d],
    );
    let (sink, out) = SinkNode::new();
    g.add_node("exit", Box::new(sink), vec![d], vec![]);
    g.run_untimed(100_000).unwrap();

    // Two outer iterations, each adding 0+1+2 = 3 → acc = 6.
    let toks = out.tokens();
    assert_eq!(
        toks.iter()
            .filter_map(|t| t.data().map(|v| v[1].as_u32()))
            .collect::<Vec<_>>(),
        vec![6]
    );
}
