//! Scheduler-equivalence property tests: the event-driven ready-set
//! executor, the retained dense-sweep reference, and the compiled
//! execution plan ([`ExecPlan`]) must produce identical sink token streams
//! and identical [`MemoryState`] on randomly generated acyclic graphs —
//! Kahn determinism means results are independent of the order in which
//! ready nodes are drained, and the plan's fused segments must be
//! observationally invisible.
//!
//! The generator grows a DAG from one source by three count-preserving
//! construction moves, so any two open channels always carry the same
//! tensor structure and may be zipped:
//!
//! - **map**: an element-wise node transforming the value (`x op imm`),
//! - **dup**: an element-wise node duplicating a stream onto two channels,
//! - **zip**: an element-wise node combining two open channels into one.
//!
//! A subset of nodes additionally writes its values into a node-private
//! DRAM window, so memory equality is exercised too (windows are disjoint:
//! cross-node write ordering is schedule-dependent, but each node's own
//! stream — and therefore its own write sequence — is deterministic).

use proptest::prelude::*;
use revet_machine::instr::{AluOp, EwInstr, Operand};
use revet_machine::nodes::{EwNode, OutputSpec, SinkHandle, SinkNode, SourceNode};
use revet_machine::{
    tbar, tdata, Channel, ExecPlan, ExecReport, Graph, MemoryState, NodeId, ResumeState, RunStatus,
    TTok,
};

/// One construction move, decoded from a raw u32.
#[derive(Clone, Copy, Debug)]
enum Move {
    Map { sel: u32, op: u32 },
    Dup { sel: u32 },
    Zip { sel_a: u32, sel_b: u32 },
}

fn decode(raw: u32) -> Move {
    let kind = raw % 3;
    let a = (raw / 3) % 1009;
    let b = (raw / 3037) % 1013;
    match kind {
        0 => Move::Map { sel: a, op: b },
        1 => Move::Dup { sel: a },
        _ => Move::Zip { sel_a: a, sel_b: b },
    }
}

/// Bytes reserved per writer node (16 word slots).
const WINDOW: usize = 64;

/// The source stream for a value list: data tokens with ragged mid-stream
/// barriers, closed by one Ω1.
fn source_tokens(values: &[u32]) -> Vec<TTok> {
    let mut toks: Vec<TTok> = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        toks.push(tdata([v]));
        if v % 7 == 0 {
            toks.push(tbar(1)); // ragged tensors: barriers mid-stream
        }
        if i + 1 == values.len() {
            toks.push(tbar(1));
        }
    }
    toks
}

/// Builds the graph described by (`toks`, `moves`); every node whose
/// index is divisible by 3 also writes its stream into a private DRAM
/// window. Returns the source node id (streaming tests feed it
/// incrementally) and the sink handles (one per remaining open channel).
fn build(toks: Vec<TTok>, moves: &[u32]) -> (Graph, NodeId, Vec<SinkHandle>) {
    let mut g = Graph::new();
    let mut writer_count = 0u32;
    let first = g.add_chan(Channel::new(1));
    let src_id = g.add_node("src", Box::new(SourceNode::new(toks)), vec![], vec![first]);
    let mut open = vec![first];

    // Instructions shared by every generated node: an optional DRAM tap
    // writing reg0 into the node's private window at (reg0 & 15)*4.
    let mut tap = |instrs: &mut Vec<EwInstr>, node_idx: usize| {
        if !node_idx.is_multiple_of(3) {
            return;
        }
        let base = writer_count * WINDOW as u32;
        writer_count += 1;
        instrs.push(EwInstr::Alu {
            op: AluOp::And,
            a: Operand::Reg(0),
            b: Operand::imm(15u32),
            dst: 3,
        });
        instrs.push(EwInstr::Alu {
            op: AluOp::Mul,
            a: Operand::Reg(3),
            b: Operand::imm(4u32),
            dst: 3,
        });
        instrs.push(EwInstr::Alu {
            op: AluOp::Add,
            a: Operand::Reg(3),
            b: Operand::imm(base),
            dst: 3,
        });
        instrs.push(EwInstr::DramWriteW {
            addr: Operand::Reg(3),
            val: Operand::Reg(0),
            pred: None,
        });
    };

    for (node_idx, &raw) in moves.iter().enumerate() {
        match decode(raw) {
            Move::Map { sel, op } => {
                let src = open.remove(sel as usize % open.len());
                let dst = g.add_chan(Channel::new(1));
                let alu = match op % 4 {
                    0 => AluOp::Add,
                    1 => AluOp::Xor,
                    2 => AluOp::Mul,
                    _ => AluOp::Rotl,
                };
                let mut instrs = vec![EwInstr::Alu {
                    op: alu,
                    a: Operand::Reg(0),
                    b: Operand::imm(1 + op % 13),
                    dst: 0,
                }];
                tap(&mut instrs, node_idx);
                g.add_node(
                    format!("map{node_idx}"),
                    Box::new(EwNode::new(1, instrs, vec![OutputSpec::plain([0])])),
                    vec![src],
                    vec![dst],
                );
                open.push(dst);
            }
            Move::Dup { sel } => {
                let src = open.remove(sel as usize % open.len());
                let d0 = g.add_chan(Channel::new(1));
                let d1 = g.add_chan(Channel::new(1));
                let mut instrs = Vec::new();
                tap(&mut instrs, node_idx);
                g.add_node(
                    format!("dup{node_idx}"),
                    Box::new(EwNode::new(
                        1,
                        instrs,
                        vec![OutputSpec::plain([0]), OutputSpec::plain([0])],
                    )),
                    vec![src],
                    vec![d0, d1],
                );
                open.push(d0);
                open.push(d1);
            }
            Move::Zip { sel_a, sel_b } => {
                if open.len() < 2 {
                    continue;
                }
                let a = open.remove(sel_a as usize % open.len());
                let b = open.remove(sel_b as usize % open.len());
                let dst = g.add_chan(Channel::new(1));
                let mut instrs = vec![EwInstr::Alu {
                    op: AluOp::Add,
                    a: Operand::Reg(0),
                    b: Operand::Reg(1),
                    dst: 0,
                }];
                tap(&mut instrs, node_idx);
                g.add_node(
                    format!("zip{node_idx}"),
                    Box::new(EwNode::new(2, instrs, vec![OutputSpec::plain([0])])),
                    vec![a, b],
                    vec![dst],
                );
                open.push(dst);
            }
        }
    }

    let mut handles = Vec::new();
    for (i, c) in open.into_iter().enumerate() {
        let (sink, h) = SinkNode::new();
        g.add_node(format!("sink{i}"), Box::new(sink), vec![c], vec![]);
        handles.push(h);
    }
    g.mem = MemoryState::with_dram_size(WINDOW * (writer_count as usize + 1));
    (g, src_id, handles)
}

fn snapshot(handles: &[SinkHandle]) -> Vec<Vec<TTok>> {
    handles.iter().map(|h| h.tokens()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Three-way triangulation: ready-set, dense-sweep, and planned
    /// executions of the same random DAG agree on every sink stream and on
    /// the entire memory state (DRAM bytes, SRAM, allocators, and traffic
    /// counters), while the ready set attempts no more steps than the
    /// dense sweep. Every generated interior node is an `EwNode`, so the
    /// plan exercises its fused path on the whole DAG (sources stay
    /// boxed).
    #[test]
    fn planned_matches_ready_matches_dense(
        values in prop::collection::vec(0u32..100, 0..14),
        moves in prop::collection::vec(0u32..3_000_000, 0..18),
    ) {
        let (mut dense_g, _, dense_h) = build(source_tokens(&values), &moves);
        let dense: ExecReport = dense_g.run_untimed_dense(100_000).unwrap();
        let (mut ready_g, _, ready_h) = build(source_tokens(&values), &moves);
        let ready: ExecReport = ready_g.run_untimed(100_000).unwrap();
        let (mut plan_g, _, plan_h) = build(source_tokens(&values), &moves);
        let plan = ExecPlan::build(&plan_g);
        plan_g.run_untimed_planned(&plan, 100_000).unwrap();

        let stats = plan.stats();
        prop_assert_eq!(
            stats.fused_ew + stats.fused_sinks + 1,
            stats.nodes,
            "everything but the source lowers: {:?}", stats
        );

        prop_assert_eq!(snapshot(&dense_h), snapshot(&ready_h));
        prop_assert_eq!(snapshot(&ready_h), snapshot(&plan_h));
        prop_assert_eq!(&dense_g.mem, &ready_g.mem);
        prop_assert_eq!(&ready_g.mem, &plan_g.mem);
        // Step *grouping* is schedule-dependent (the ready set may fire a
        // node at finer granularity), but total attempted work must not be.
        prop_assert!(
            ready.steps <= dense.steps,
            "ready set did more work ({} > {})", ready.steps, dense.steps
        );
    }

    /// Streaming bit-identity on random DAGs: feeding the source stream in
    /// K chunks at arbitrary token boundaries — with a resumable run after
    /// each chunk — yields exactly the one-shot sink streams and memory
    /// state, on both the interpreted and the planned executor. Chunking
    /// only perturbs the schedule, and Kahn semantics make the result
    /// schedule-independent; intermediate polls may legitimately pause
    /// with in-flight tokens, but the final poll must drain clean.
    #[test]
    fn chunked_feed_matches_one_shot(
        values in prop::collection::vec(0u32..100, 0..14),
        moves in prop::collection::vec(0u32..3_000_000, 0..18),
        cuts in prop::collection::vec(0usize..64, 0..5),
    ) {
        let toks = source_tokens(&values);
        let (mut one_g, _, one_h) = build(toks.clone(), &moves);
        one_g.run_untimed(100_000).unwrap();

        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (toks.len() + 1)).collect();
        bounds.push(0);
        bounds.push(toks.len());
        bounds.sort_unstable();
        bounds.dedup();

        // Interpreted executor, chunked.
        let (mut ig, src, ih) = build(Vec::new(), &moves);
        let mut resume = ResumeState::new();
        let mut last = RunStatus::Finished;
        for w in bounds.windows(2) {
            ig.feed_source(src, toks[w[0]..w[1]].to_vec()).unwrap();
            (_, last) = ig.run_untimed_resumable(&mut resume, 100_000).unwrap();
        }
        prop_assert_eq!(last, RunStatus::Finished, "interpreted final drain");
        prop_assert_eq!(snapshot(&one_h), snapshot(&ih));
        prop_assert_eq!(&one_g.mem, &ig.mem);

        // Planned executor, chunked (plan built once, before any input).
        let (mut pg, src, ph) = build(Vec::new(), &moves);
        let plan = ExecPlan::build(&pg);
        let mut resume = ResumeState::new();
        let mut last = RunStatus::Finished;
        for w in bounds.windows(2) {
            pg.feed_source(src, toks[w[0]..w[1]].to_vec()).unwrap();
            (_, last) = pg
                .run_untimed_planned_resumable(&plan, &mut resume, 100_000)
                .unwrap();
        }
        prop_assert_eq!(last, RunStatus::Finished, "planned final drain");
        prop_assert_eq!(snapshot(&one_h), snapshot(&ph));
        prop_assert_eq!(&one_g.mem, &pg.mem);
    }
}
