//! Property tests for machine-level invariants: the SLTF composability
//! rules (§III-B) on randomly generated workloads.

use proptest::prelude::*;
use revet_machine::instr::{AluOp, EwInstr, Operand};
use revet_machine::nodes::{
    CounterNode, EwNode, FbMergeNode, FlattenNode, OutputSpec, ReduceNode, SinkNode, SourceNode,
};
use revet_machine::{tbar, tdata, Channel, Graph, TTok};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// foreach(sum over 0..n) built as counter+reduce equals the closed form
    /// for arbitrary thread tensors, including empty ones.
    #[test]
    fn counter_reduce_matches_reference(counts in prop::collection::vec(0u32..20, 0..12)) {
        let mut g = Graph::new();
        let a = g.add_chan(Channel::new(1));
        let b = g.add_chan(Channel::new(1));
        let d = g.add_chan(Channel::new(1));
        let mut toks: Vec<TTok> = counts.iter().map(|&c| tdata([c])).collect();
        toks.push(tbar(1));
        g.add_node("src", Box::new(SourceNode::new(toks)), vec![], vec![a]);
        g.add_node(
            "counter",
            Box::new(CounterNode::new(Operand::imm(0u32), Operand::Reg(0), Operand::imm(1u32))),
            vec![a],
            vec![b],
        );
        g.add_node("reduce", Box::new(ReduceNode::new(AluOp::Add, 0u32)), vec![b], vec![d]);
        let (sink, out) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![d], vec![]);
        g.run_untimed(1_000_000).unwrap();

        let toks = out.tokens();
        let got: Vec<u32> = toks.iter().filter_map(|t| t.data().map(|v| v[0].as_u32())).collect();
        // sum(0..c) = c*(c-1)/2
        let want: Vec<u32> = counts.iter().map(|&c| c * c.saturating_sub(1) / 2).collect();
        prop_assert_eq!(got, want);
        // Exactly one barrier, at the original level, at the end.
        prop_assert_eq!(toks.last(), Some(&tbar(1)));
        prop_assert_eq!(toks.iter().filter(|t| t.is_barrier()).count(), 1);
    }

    /// A while loop with arbitrary per-thread trip counts: every thread exits
    /// exactly once with its counter at zero, and one barrier exits per
    /// barrier entered — over multiple back-to-back tensors.
    #[test]
    fn while_loop_thread_conservation(
        tensors in prop::collection::vec(prop::collection::vec(0u32..9, 0..6), 1..4)
    ) {
        let mut g = Graph::new();
        let a = g.add_chan(Channel::new(2));
        let body_in = g.add_chan(Channel::new(2));
        let body_out = g.add_chan(Channel::new(2));
        let back = g.add_chan(Channel::new(2).without_canonicalization());
        let exit_raw = g.add_chan(Channel::new(2));
        let d = g.add_chan(Channel::new(2));
        let mut toks = Vec::new();
        let mut id = 0u32;
        let mut expect_ids = Vec::new();
        for tensor in &tensors {
            for &trips in tensor {
                toks.push(tdata([id, trips]));
                expect_ids.push(id);
                id += 1;
            }
            toks.push(tbar(1));
        }
        g.add_node("src", Box::new(SourceNode::new(toks)), vec![], vec![a]);
        g.add_node("head", Box::new(FbMergeNode::new()), vec![a, back], vec![body_in]);
        // Body: remaining = max(remaining-1, 0) — trips==0 exits on first pass.
        g.add_node(
            "body",
            Box::new(EwNode::new(
                2,
                vec![
                    EwInstr::Alu { op: AluOp::GtS, a: Operand::Reg(1), b: Operand::imm(0u32), dst: 2 },
                    EwInstr::Alu { op: AluOp::Sub, a: Operand::Reg(1), b: Operand::Reg(2), dst: 1 },
                ],
                vec![OutputSpec::plain([0, 1])],
            )),
            vec![body_in],
            vec![body_out],
        );
        g.add_node(
            "backfilter",
            Box::new(EwNode::new(
                2,
                vec![EwInstr::Alu { op: AluOp::GtS, a: Operand::Reg(1), b: Operand::imm(0u32), dst: 2 }],
                vec![
                    OutputSpec::filtered([0, 1], 2, true),
                    OutputSpec::filtered([0, 1], 2, false),
                ],
            )),
            vec![body_out],
            vec![back, exit_raw],
        );
        g.add_node("strip", Box::new(FlattenNode::new()), vec![exit_raw], vec![d]);
        let (sink, out) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![d], vec![]);
        g.run_untimed(1_000_000).unwrap();

        let toks = out.tokens();
        // Thread conservation within each tensor segment.
        let mut seg = Vec::new();
        let mut seg_idx = 0usize;
        for t in &toks {
            match t {
                revet_sltf::Tok::Data(v) => {
                    prop_assert_eq!(v[1].as_u32(), 0, "threads exit with counter at 0");
                    seg.push(v[0].as_u32());
                }
                revet_sltf::Tok::Barrier(l) => {
                    prop_assert_eq!(l.get(), 1, "exit barriers restored to entry level");
                    let mut want: Vec<u32> = {
                        let start: u32 = tensors[..seg_idx].iter().map(|t| t.len() as u32).sum();
                        (start..start + tensors[seg_idx].len() as u32).collect()
                    };
                    want.sort_unstable();
                    seg.sort_unstable();
                    prop_assert_eq!(std::mem::take(&mut seg), want, "tensor {} conserved", seg_idx);
                    seg_idx += 1;
                }
            }
        }
        prop_assert_eq!(seg_idx, tensors.len(), "one exit barrier per input tensor");
    }

    /// Flatten ∘ Counter is fork-like: element count multiplies, hierarchy
    /// unchanged.
    #[test]
    fn counter_then_flatten_preserves_level(counts in prop::collection::vec(0u32..10, 0..8)) {
        let mut g = Graph::new();
        let a = g.add_chan(Channel::new(1));
        let b = g.add_chan(Channel::new(1));
        let d = g.add_chan(Channel::new(1));
        let mut toks: Vec<TTok> = counts.iter().map(|&c| tdata([c])).collect();
        toks.push(tbar(1));
        g.add_node("src", Box::new(SourceNode::new(toks)), vec![], vec![a]);
        g.add_node(
            "counter",
            Box::new(CounterNode::new(Operand::imm(0u32), Operand::Reg(0), Operand::imm(1u32))),
            vec![a],
            vec![b],
        );
        g.add_node("flatten", Box::new(FlattenNode::new()), vec![b], vec![d]);
        let (sink, out) = SinkNode::new();
        g.add_node("sink", Box::new(sink), vec![d], vec![]);
        g.run_untimed(1_000_000).unwrap();
        let toks = out.tokens();
        let total: u32 = counts.iter().sum();
        prop_assert_eq!(toks.iter().filter(|t| t.is_data()).count() as u32, total);
        prop_assert_eq!(toks.last(), Some(&tbar(1)));
    }
}
