//! Property tests for [`Ring`], the power-of-two channel queue: random
//! push/pop interleavings at capacities 1..64 must behave exactly like a
//! `VecDeque` model, across wraparound (head chasing its own tail) and
//! grow-on-full doublings.

use proptest::prelude::*;
use revet_machine::Ring;
use std::collections::VecDeque;

/// One step of the interleaving. Weighted toward pushes so runs actually
/// fill the ring and force a grow; PopBack mixes in the deque-style use.
#[derive(Clone, Debug)]
enum Step {
    PushBack(u32),
    PopFront,
    PopBack,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // 3:2:1 push/pop-front/pop-back, decoded from one u64 (the vendored
    // proptest has no `prop_oneof!`): high bits pick the variant, low 32
    // bits are the pushed value.
    any::<u64>().prop_map(|raw| match (raw >> 32) % 6 {
        0..=2 => Step::PushBack(raw as u32),
        3..=4 => Step::PopFront,
        _ => Step::PopBack,
    })
}

/// Replays `steps` against both the ring and a `VecDeque` model, checking
/// every observable (returned values, len, front/back, full indexed
/// contents) after each step.
fn check(mut ring: Ring<u32>, steps: &[Step]) {
    let mut model: VecDeque<u32> = VecDeque::new();
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::PushBack(v) => {
                ring.push_back(*v);
                model.push_back(*v);
            }
            Step::PopFront => {
                assert_eq!(ring.pop_front(), model.pop_front(), "step {i}");
            }
            Step::PopBack => {
                assert_eq!(ring.pop_back(), model.pop_back(), "step {i}");
            }
        }
        assert_eq!(ring.len(), model.len(), "step {i}: len diverged");
        assert_eq!(ring.is_empty(), model.is_empty(), "step {i}");
        assert_eq!(ring.front(), model.front(), "step {i}: front diverged");
        assert_eq!(ring.back(), model.back(), "step {i}: back diverged");
        assert!(
            ring.capacity() >= ring.len(),
            "step {i}: len {} exceeds capacity {}",
            ring.len(),
            ring.capacity()
        );
        for k in 0..model.len() {
            assert_eq!(
                ring.get(k),
                model.get(k),
                "step {i}: element {k} diverged after wraparound/grow"
            );
        }
    }
    // Terminal observables: iteration order and drain order both match.
    let via_iter: Vec<u32> = ring.iter().copied().collect();
    let expect: Vec<u32> = model.iter().copied().collect();
    assert_eq!(via_iter, expect, "iter order diverged");
    assert_eq!(ring.drain_all(), expect, "drain order diverged");
    assert!(ring.is_empty(), "drain_all must empty the ring");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pre-sized rings (capacity 1..64) under random interleavings long
    /// enough to wrap head past the storage boundary many times and to
    /// overflow the initial allocation (grow-on-full).
    #[test]
    fn presized_ring_matches_vecdeque(
        cap in 1usize..64,
        steps in prop::collection::vec(step_strategy(), 0..200),
    ) {
        check(Ring::with_capacity(cap), &steps);
    }

    /// A `Ring::new()` ring starts with zero storage — the first push
    /// allocates — and must satisfy the same model.
    #[test]
    fn unsized_ring_matches_vecdeque(
        steps in prop::collection::vec(step_strategy(), 0..200),
    ) {
        check(Ring::new(), &steps);
    }

    /// A capacity bound is a no-realloc promise: pushing exactly `cap`
    /// elements never changes `capacity()`, and alternating pop-front/
    /// push-back at full occupancy (steady-state channel traffic) keeps
    /// wrapping without growing.
    #[test]
    fn bounded_fill_and_steady_state_never_reallocate(
        cap in 1usize..64,
        traffic in prop::collection::vec(any::<u32>(), 0..150),
    ) {
        let mut ring = Ring::with_capacity(cap);
        let fixed = ring.capacity();
        prop_assert!(fixed >= cap);
        for v in 0..cap as u32 {
            ring.push_back(v);
        }
        prop_assert_eq!(ring.capacity(), fixed, "fill to cap grew the ring");
        let mut model: VecDeque<u32> = (0..cap as u32).collect();
        for (i, v) in traffic.iter().enumerate() {
            prop_assert_eq!(ring.pop_front(), model.pop_front(), "step {}", i);
            ring.push_back(*v);
            model.push_back(*v);
            prop_assert_eq!(ring.capacity(), fixed, "steady state grew the ring");
            prop_assert_eq!(ring.front(), model.front(), "step {}", i);
            prop_assert_eq!(ring.back(), model.back(), "step {}", i);
        }
        let got: Vec<u32> = ring.drain_all();
        let expect: Vec<u32> = model.into_iter().collect();
        prop_assert_eq!(got, expect);
    }
}
