//! A structural verifier for MIR.
//!
//! Catches compiler bugs early: values used before definition (respecting
//! region scoping), missing/extra terminators, arity mismatches between
//! `yield`s and the construct consuming them, and references to undeclared
//! memory objects. Run between passes in debug builds.

use crate::func::{Func, Module};
use crate::ops::{Op, OpKind, Region, Value};
use revet_diag::Span;
use std::collections::HashSet;
use std::fmt;

/// A verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Function in which the error occurred.
    pub func: String,
    /// Description.
    pub message: String,
    /// Source attribution of the offending op, when the function's
    /// [`SpanTable`](crate::SpanTable) knows it (front-end-built modules
    /// do; hand-built ones don't).
    pub span: Option<Span>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in @{}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the first structural error found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.funcs {
        verify_func(m, f)?;
    }
    Ok(())
}

/// Verifies one function.
///
/// # Errors
///
/// Returns the first structural error found.
pub fn verify_func(m: &Module, f: &Func) -> Result<(), VerifyError> {
    let err = |msg: String| VerifyError {
        func: f.name.clone(),
        message: msg,
        span: None,
    };
    let mut defined: HashSet<Value> = f.params.iter().copied().collect();
    verify_region(m, f, &f.body, &mut defined, true, &err)?;
    Ok(())
}

fn verify_region(
    m: &Module,
    f: &Func,
    r: &Region,
    defined: &mut HashSet<Value>,
    is_func_body: bool,
    err: &dyn Fn(String) -> VerifyError,
) -> Result<(), VerifyError> {
    // Region args come into scope here; they leave scope when we return
    // (values defined inside stay visible only within — enforced by cloning).
    let mut scope = defined.clone();
    for a in &r.args {
        if a.0 as usize >= f.value_count() {
            return Err(err(format!("region arg %{} out of value table", a.0)));
        }
        scope.insert(*a);
    }
    for (i, op) in r.ops.iter().enumerate() {
        // Attribute errors about this op to its source span, unless a
        // nested region already pinned a finer one.
        let attach = |mut e: VerifyError| {
            if e.span.is_none() {
                e.span = f.spans.op_span(op);
            }
            e
        };
        let last = i + 1 == r.ops.len();
        if op.kind.is_terminator() && !last {
            return Err(attach(err(
                "terminator in the middle of a region".to_string()
            )));
        }
        if last && is_func_body && !matches!(op.kind, OpKind::Return(_) | OpKind::Exit) {
            return Err(attach(err(
                "function body must end in return or exit".to_string()
            )));
        }
        for v in op.kind.operands() {
            if !scope.contains(&v) {
                return Err(attach(err(format!("use of undefined value %{}", v.0))));
            }
        }
        verify_op(m, f, op, &mut scope, err).map_err(attach)?;
        for res in &op.results {
            if res.0 as usize >= f.value_count() {
                return Err(err(format!("result %{} out of value table", res.0)));
            }
            scope.insert(*res);
        }
    }
    Ok(())
}

fn region_yield_arity(r: &Region) -> Option<usize> {
    match r.ops.last().map(|o| &o.kind) {
        Some(OpKind::Yield(vs)) => Some(vs.len()),
        _ => None,
    }
}

fn verify_op(
    m: &Module,
    f: &Func,
    op: &Op,
    scope: &mut HashSet<Value>,
    err: &dyn Fn(String) -> VerifyError,
) -> Result<(), VerifyError> {
    match &op.kind {
        OpKind::SramRead { sram, .. }
        | OpKind::SramWrite { sram, .. }
        | OpKind::SramDecFetch { sram, .. }
        | OpKind::BulkLoad { sram, .. }
        | OpKind::BulkStore { sram, .. } => {
            if sram.0 as usize >= m.srams.len() {
                return Err(err(format!("undeclared SRAM region #{}", sram.0)));
            }
        }
        OpKind::AllocPop { alloc } | OpKind::AllocPush { alloc, .. } => {
            if alloc.0 as usize >= m.allocs.len() {
                return Err(err(format!("undeclared allocator #{}", alloc.0)));
            }
        }
        _ => {}
    }
    match &op.kind {
        OpKind::DramRead { dram, .. }
        | OpKind::DramWrite { dram, .. }
        | OpKind::ItNew { dram, .. } => {
            if dram.0 as usize >= m.drams.len() {
                return Err(err(format!("undeclared DRAM symbol @{}", dram.0)));
            }
        }
        _ => {}
    }
    match &op.kind {
        OpKind::If { then, else_, .. } => {
            verify_region(m, f, then, scope, false, err)?;
            verify_region(m, f, else_, scope, false, err)?;
            let a = region_yield_arity(then);
            let b = region_yield_arity(else_);
            // Regions ending in exit need not match arities.
            if let (Some(a), Some(b)) = (a, b) {
                if a != b || a != op.results.len() {
                    return Err(err(format!(
                        "if yields mismatch: then={a}, else={b}, results={}",
                        op.results.len()
                    )));
                }
            }
        }
        OpKind::While {
            inits,
            before,
            after,
        } => {
            if before.args.len() != inits.len() {
                return Err(err(format!(
                    "while: before takes {} args but {} inits",
                    before.args.len(),
                    inits.len()
                )));
            }
            verify_region(m, f, before, scope, false, err)?;
            verify_region(m, f, after, scope, false, err)?;
            match before.ops.last().map(|o| &o.kind) {
                Some(OpKind::Condition { fwd, .. }) => {
                    if fwd.len() != after.args.len() {
                        return Err(err(format!(
                            "while: condition forwards {} values, body takes {}",
                            fwd.len(),
                            after.args.len()
                        )));
                    }
                    if fwd.len() != op.results.len() {
                        return Err(err(format!(
                            "while: condition forwards {} values, op has {} results",
                            fwd.len(),
                            op.results.len()
                        )));
                    }
                }
                _ => return Err(err("while: before must end in condition".to_string())),
            }
            match region_yield_arity(after) {
                Some(n) if n == inits.len() => {}
                Some(n) => {
                    return Err(err(format!(
                        "while: body yields {n} values, {} carried",
                        inits.len()
                    )))
                }
                None => {
                    // A body ending in exit is legal (thread dies).
                    if !matches!(after.ops.last().map(|o| &o.kind), Some(OpKind::Exit)) {
                        return Err(err("while: body must end in yield or exit".to_string()));
                    }
                }
            }
        }
        OpKind::Foreach { body, reduce, .. } => {
            if body.args.len() != 1 {
                return Err(err("foreach body takes exactly one index arg".to_string()));
            }
            verify_region(m, f, body, scope, false, err)?;
            if let Some(n) = region_yield_arity(body) {
                if n != reduce.len() || n != op.results.len() {
                    return Err(err(format!(
                        "foreach: yields {n}, reduces {}, results {}",
                        reduce.len(),
                        op.results.len()
                    )));
                }
            }
        }
        OpKind::Replicate { body, ways } => {
            if *ways == 0 {
                return Err(err("replicate(0) is meaningless".to_string()));
            }
            verify_region(m, f, body, scope, false, err)?;
        }
        OpKind::Fork { body, .. } => {
            if body.args.len() != 1 {
                return Err(err("fork body takes exactly one index arg".to_string()));
            }
            verify_region(m, f, body, scope, false, err)?;
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::ops::AluOp;
    use crate::types::Ty;

    #[test]
    fn accepts_valid_func() {
        let mut m = Module::default();
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let one = b.const_i32(&mut f, 1);
        let s = b.bin(&mut f, AluOp::Add, p, one);
        b.emit0(OpKind::Return(vec![s]));
        f.body = b.build();
        m.funcs.push(f);
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_undefined_value() {
        let mut m = Module::default();
        let mut f = Func::new("main", &[], vec![]);
        let ghost = Value(99);
        let mut b = RegionBuilder::new();
        b.push(OpKind::Return(vec![ghost]), vec![]);
        f.body = b.build();
        m.funcs.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("undefined value"));
    }

    #[test]
    fn rejects_missing_return() {
        let mut m = Module::default();
        let mut f = Func::new("main", &[], vec![]);
        let mut b = RegionBuilder::new();
        b.const_i32(&mut f, 1);
        f.body = b.build();
        m.funcs.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("must end in return"));
    }

    #[test]
    fn rejects_region_value_escape() {
        // Values defined inside an if-region must not be used outside.
        let mut m = Module::default();
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut then_b = RegionBuilder::new();
        let inner = then_b.const_i32(&mut f, 5);
        then_b.emit0(OpKind::Yield(vec![inner]));
        let mut else_b = RegionBuilder::new();
        else_b.emit0(OpKind::Yield(vec![p]));
        let mut b = RegionBuilder::new();
        let r = f.new_value(Ty::I32);
        b.push(
            OpKind::If {
                cond: p,
                then: then_b.build(),
                else_: else_b.build(),
            },
            vec![r],
        );
        // Illegal: use `inner` outside its region.
        b.emit0(OpKind::Return(vec![inner]));
        f.body = b.build();
        m.funcs.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("undefined value"));
    }

    #[test]
    fn rejects_bad_while_shape() {
        let mut m = Module::default();
        let mut f = Func::new("main", &[Ty::I32], vec![]);
        let n = f.params[0];
        let cv = f.new_value(Ty::I32);
        // before ends in yield (wrong: must be condition).
        let mut before = RegionBuilder::with_args(vec![cv]);
        before.emit0(OpKind::Yield(vec![cv]));
        let av = f.new_value(Ty::I32);
        let mut after = RegionBuilder::with_args(vec![av]);
        after.emit0(OpKind::Yield(vec![av]));
        let r = f.new_value(Ty::I32);
        let mut b = RegionBuilder::new();
        b.push(
            OpKind::While {
                inits: vec![n],
                before: before.build(),
                after: after.build(),
            },
            vec![r],
        );
        b.emit0(OpKind::Return(vec![]));
        f.body = b.build();
        m.funcs.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("condition"));
    }

    #[test]
    fn rejects_undeclared_memory() {
        let mut m = Module::default();
        let mut f = Func::new("main", &[Ty::I32], vec![]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        b.emit0(OpKind::DramWrite {
            dram: crate::types::DramRef(3),
            idx: p,
            val: p,
        });
        b.emit0(OpKind::Return(vec![]));
        f.body = b.build();
        m.funcs.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("undeclared DRAM"));
    }
}
