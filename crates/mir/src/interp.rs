//! A reference interpreter for MIR.
//!
//! Defines the *sequential* semantics that the dataflow compiler must
//! preserve: `foreach` iterations and `fork` spawns are executed in index
//! order (legal because the language only admits unordered, data-race-free
//! parallelism), views and iterators operate directly on DRAM (tile staging
//! is a performance transformation, not a semantic one). The interpreter
//! runs both *before* and *after* lowering passes, making every pass
//! differentially testable, and serves as the oracle for compiled dataflow
//! execution.

use crate::func::{Func, Module};
use crate::ops::{Op, OpKind, Region, Value, ViewKind};
use crate::types::{DramLayout, DramRef, Ty};
use revet_machine::MemoryState;
use revet_sltf::Word;
use std::collections::HashMap;
use std::fmt;

/// An interpretation error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InterpError {
    /// Description.
    pub message: String,
}

impl InterpError {
    fn new(m: impl Into<String>) -> Self {
        InterpError { message: m.into() }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interp error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// Thread-level control flow.
enum Flow {
    /// Fell off the end of a region (no terminator encountered).
    Normal,
    /// `Yield(vals)`.
    Yield(Vec<Word>),
    /// `Condition { cond, fwd }`.
    Cond(bool, Vec<Word>),
    /// `Return(vals)`.
    Return(Vec<Word>),
    /// `Exit` — the thread terminated.
    Exit,
}

/// Per-handle state for high-level view/iterator ops.
#[derive(Clone, Debug)]
enum HandleObj {
    View {
        #[allow(dead_code)] // recorded for debugging dumps
        kind: ViewKind,
        dram: Option<DramRef>,
        /// Base element index in the DRAM symbol.
        base: u32,
        /// Thread-local scratch for `ViewKind::Sram`.
        local: Vec<Word>,
    },
    It {
        dram: DramRef,
        cursor: u32,
    },
}

/// The MIR interpreter. Owns nothing: module, layout, and memory are
/// borrowed so callers can inspect DRAM afterwards.
pub struct Interp<'m> {
    module: &'m Module,
    layout: &'m DramLayout,
    mem: &'m mut MemoryState,
    fuel: u64,
    /// Dynamic op count (reported for rough workload sizing).
    pub ops_executed: u64,
}

impl fmt::Debug for Interp<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("fuel", &self.fuel)
            .field("ops_executed", &self.ops_executed)
            .finish_non_exhaustive()
    }
}

/// Everything a single function activation needs.
struct Frame<'f> {
    #[allow(dead_code)] // kept for error reporting context
    func: &'f Func,
    env: Vec<Word>,
    handles: HashMap<Value, HandleObj>,
}

impl<'m> Interp<'m> {
    /// Creates an interpreter with the default fuel (100M dynamic ops).
    pub fn new(module: &'m Module, layout: &'m DramLayout, mem: &'m mut MemoryState) -> Self {
        Interp {
            module,
            layout,
            mem,
            fuel: 100_000_000,
            ops_executed: 0,
        }
    }

    /// Overrides the dynamic-op budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs a function by name with word arguments.
    ///
    /// # Errors
    ///
    /// Fails on unknown functions, fuel exhaustion, or malformed IR.
    pub fn run(&mut self, name: &str, args: &[Word]) -> Result<Vec<Word>, InterpError> {
        let func = self
            .module
            .func(name)
            .ok_or_else(|| InterpError::new(format!("no function '{name}'")))?;
        if args.len() != func.params.len() {
            return Err(InterpError::new(format!(
                "'{name}' takes {} arguments, got {}",
                func.params.len(),
                args.len()
            )));
        }
        let mut frame = Frame {
            func,
            env: vec![Word::ZERO; func.value_count()],
            handles: HashMap::new(),
        };
        for (p, a) in func.params.iter().zip(args) {
            frame.env[p.0 as usize] = *a;
        }
        match self.exec_region(&mut frame, &func.body, &[])? {
            Flow::Return(vals) => Ok(vals),
            Flow::Exit => Ok(Vec::new()),
            Flow::Normal => Ok(Vec::new()),
            _ => Err(InterpError::new(
                "function body ended with a non-return terminator",
            )),
        }
    }

    fn burn(&mut self) -> Result<(), InterpError> {
        if self.fuel == 0 {
            return Err(InterpError::new("fuel exhausted (runaway loop?)"));
        }
        self.fuel -= 1;
        self.ops_executed += 1;
        Ok(())
    }

    fn exec_region(
        &mut self,
        fr: &mut Frame<'_>,
        region: &Region,
        args: &[Word],
    ) -> Result<Flow, InterpError> {
        if args.len() != region.args.len() {
            return Err(InterpError::new(format!(
                "region expects {} args, got {}",
                region.args.len(),
                args.len()
            )));
        }
        for (v, a) in region.args.iter().zip(args) {
            fr.env[v.0 as usize] = *a;
        }
        for op in &region.ops {
            match self.exec_op(fr, op)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn get(&self, fr: &Frame<'_>, v: Value) -> Word {
        fr.env[v.0 as usize]
    }

    fn set_results(&mut self, fr: &mut Frame<'_>, op: &Op, vals: &[Word]) {
        for (r, v) in op.results.iter().zip(vals) {
            fr.env[r.0 as usize] = *v;
        }
    }

    fn dram_addr(&self, d: DramRef, idx: Word) -> (u32, u32) {
        let eb = self.module.drams[d.0 as usize].elem_bytes;
        (self.layout.addr(d, eb, idx.as_u32()), eb)
    }

    fn dram_load(&mut self, d: DramRef, idx: Word) -> Word {
        let (addr, eb) = self.dram_addr(d, idx);
        match eb {
            1 => self.mem.dram_read_byte(addr),
            2 => {
                let lo = self.mem.dram_read_byte(addr).as_u32();
                let hi = self.mem.dram_read_byte(addr + 1).as_u32();
                Word(lo | (hi << 8))
            }
            _ => self.mem.dram_read_word(addr),
        }
    }

    fn dram_store(&mut self, d: DramRef, idx: Word, val: Word) {
        let (addr, eb) = self.dram_addr(d, idx);
        match eb {
            1 => self.mem.dram_write_byte(addr, val),
            2 => {
                self.mem.dram_write_byte(addr, Word(val.as_u32() & 0xFF));
                self.mem
                    .dram_write_byte(addr + 1, Word((val.as_u32() >> 8) & 0xFF));
            }
            _ => self.mem.dram_write_word(addr, val),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_op(&mut self, fr: &mut Frame<'_>, op: &Op) -> Result<Flow, InterpError> {
        self.burn()?;
        match &op.kind {
            OpKind::ConstI(v, ty) => {
                let w = match ty {
                    Ty::I8 => Word((*v as u8) as u32),
                    Ty::I16 => Word((*v as u16) as u32),
                    _ => Word(*v as u32),
                };
                self.set_results(fr, op, &[w]);
            }
            OpKind::Bin(alu, a, b) => {
                let r = alu.apply(self.get(fr, *a), self.get(fr, *b));
                self.set_results(fr, op, &[r]);
            }
            OpKind::Select(c, t, f) => {
                let r = if self.get(fr, *c).as_bool() {
                    self.get(fr, *t)
                } else {
                    self.get(fr, *f)
                };
                self.set_results(fr, op, &[r]);
            }
            OpKind::Cast { v, to, signed } => {
                let w = self.get(fr, *v);
                let r = match (to, signed) {
                    (Ty::I8, false) => Word(w.as_u32() & 0xFF),
                    (Ty::I8, true) => Word::from_i32(w.as_u32() as u8 as i8 as i32),
                    (Ty::I16, false) => Word(w.as_u32() & 0xFFFF),
                    (Ty::I16, true) => Word::from_i32(w.as_u32() as u16 as i16 as i32),
                    _ => w,
                };
                self.set_results(fr, op, &[r]);
            }
            OpKind::SramRead { sram, addr } => {
                let a = self.get(fr, *addr).as_u32();
                let r = self.mem.sram_read(*sram, a);
                self.set_results(fr, op, &[r]);
            }
            OpKind::SramWrite { sram, addr, val } => {
                let a = self.get(fr, *addr).as_u32();
                let v = self.get(fr, *val);
                self.mem.sram_write(*sram, a, v);
            }
            OpKind::SramDecFetch { sram, addr } => {
                let a = self.get(fr, *addr).as_u32();
                let new = Word(self.mem.sram_read(*sram, a).as_u32().wrapping_sub(1));
                self.mem.sram_write(*sram, a, new);
                self.set_results(fr, op, &[new]);
            }
            OpKind::DramRead { dram, idx } => {
                let i = self.get(fr, *idx);
                let r = self.dram_load(*dram, i);
                self.set_results(fr, op, &[r]);
            }
            OpKind::DramWrite { dram, idx, val } => {
                let i = self.get(fr, *idx);
                let v = self.get(fr, *val);
                self.dram_store(*dram, i, v);
            }
            OpKind::AllocPop { alloc } => {
                let ptr = self
                    .mem
                    .alloc_pop(*alloc)
                    .ok_or_else(|| InterpError::new("allocator exhausted in sequential interp"))?;
                self.set_results(fr, op, &[Word(ptr)]);
            }
            OpKind::AllocPush { alloc, ptr } => {
                let p = self.get(fr, *ptr).as_u32();
                self.mem.alloc_push(*alloc, p);
            }
            OpKind::BulkLoad {
                dram,
                dram_base,
                sram,
                sram_base,
                len,
            } => {
                let db = self.get(fr, *dram_base).as_u32();
                let sb = self.get(fr, *sram_base).as_u32();
                let n = self.get(fr, *len).as_u32();
                for i in 0..n {
                    let v = self.dram_load(*dram, Word(db + i));
                    self.mem.sram_write(*sram, sb + i, v);
                }
            }
            OpKind::BulkStore {
                dram,
                dram_base,
                sram,
                sram_base,
                len,
            } => {
                let db = self.get(fr, *dram_base).as_u32();
                let sb = self.get(fr, *sram_base).as_u32();
                let n = self.get(fr, *len).as_u32();
                for i in 0..n {
                    let v = self.mem.sram_read(*sram, sb + i);
                    self.dram_store(*dram, Word(db + i), v);
                }
            }
            OpKind::If { cond, then, else_ } => {
                let taken = self.get(fr, *cond).as_bool();
                let region = if taken { then } else { else_ };
                match self.exec_region(fr, region, &[])? {
                    Flow::Yield(vals) => self.set_results(fr, op, &vals),
                    Flow::Normal => {}
                    other => return Ok(other),
                }
            }
            OpKind::While {
                inits,
                before,
                after,
            } => {
                let mut carried: Vec<Word> = inits.iter().map(|v| self.get(fr, *v)).collect();
                loop {
                    match self.exec_region(fr, before, &carried)? {
                        Flow::Cond(true, fwd) => match self.exec_region(fr, after, &fwd)? {
                            Flow::Yield(next) => carried = next,
                            Flow::Exit => return Ok(Flow::Exit),
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            _ => return Err(InterpError::new("while body must end in yield")),
                        },
                        Flow::Cond(false, fwd) => {
                            self.set_results(fr, op, &fwd);
                            break;
                        }
                        Flow::Exit => return Ok(Flow::Exit),
                        _ => {
                            return Err(InterpError::new(
                                "while condition region must end in condition op",
                            ))
                        }
                    }
                }
            }
            OpKind::Foreach {
                lo,
                hi,
                step,
                body,
                reduce,
                ..
            } => {
                let lo = self.get(fr, *lo).as_i32() as i64;
                let hi = self.get(fr, *hi).as_i32() as i64;
                let step = self.get(fr, *step).as_i32() as i64;
                if step == 0 {
                    return Err(InterpError::new("foreach step is zero"));
                }
                let mut accs: Vec<Word> = reduce.iter().map(|op| op.reduction_identity()).collect();
                let mut i = lo;
                while (step > 0 && i < hi) || (step < 0 && i > hi) {
                    match self.exec_region(fr, body, &[Word::from_i32(i as i32)])? {
                        Flow::Yield(vals) => {
                            for ((acc, op_), v) in accs.iter_mut().zip(reduce).zip(&vals) {
                                *acc = op_.apply(*acc, *v);
                            }
                        }
                        Flow::Normal => {}
                        Flow::Exit => {} // exited threads contribute nothing
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Cond(..) => return Err(InterpError::new("condition outside while")),
                    }
                    i += step;
                }
                self.set_results(fr, op, &accs);
            }
            OpKind::Replicate { body, .. } => {
                // Semantically identity: execute the body once per thread.
                match self.exec_region(fr, body, &[])? {
                    Flow::Yield(vals) => self.set_results(fr, op, &vals),
                    Flow::Normal => {}
                    other => return Ok(other),
                }
            }
            OpKind::Fork { count, body } => {
                let n = self.get(fr, *count).as_i32() as i64;
                let mut survivor: Option<Vec<Word>> = None;
                for i in 0..n {
                    match self.exec_region(fr, body, &[Word::from_i32(i as i32)])? {
                        Flow::Yield(vals) => {
                            if survivor.is_some() {
                                return Err(InterpError::new(
                                    "fork: more than one spawned thread reached the \
                                     continuation (yield)",
                                ));
                            }
                            survivor = Some(vals);
                        }
                        Flow::Normal | Flow::Exit => {}
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Cond(..) => return Err(InterpError::new("condition outside while")),
                    }
                }
                match survivor {
                    Some(vals) => self.set_results(fr, op, &vals),
                    None => return Ok(Flow::Exit), // no continuation thread
                }
            }
            OpKind::Predicated {
                pred,
                expect,
                inner,
            } => {
                if self.get(fr, *pred).as_bool() == *expect {
                    let inner_op = Op {
                        kind: (**inner).clone(),
                        results: op.results.clone(),
                    };
                    return self.exec_op(fr, &inner_op);
                }
                let zeros = vec![Word::ZERO; op.results.len()];
                self.set_results(fr, op, &zeros);
            }
            OpKind::Exit => return Ok(Flow::Exit),
            OpKind::Yield(vs) => {
                let vals = vs.iter().map(|v| self.get(fr, *v)).collect();
                return Ok(Flow::Yield(vals));
            }
            OpKind::Condition { cond, fwd } => {
                let c = self.get(fr, *cond).as_bool();
                let vals = fwd.iter().map(|v| self.get(fr, *v)).collect();
                return Ok(Flow::Cond(c, vals));
            }
            OpKind::Return(vs) => {
                let vals = vs.iter().map(|v| self.get(fr, *v)).collect();
                return Ok(Flow::Return(vals));
            }
            OpKind::ViewNew {
                kind,
                dram,
                base,
                size,
            } => {
                let base_elem = base.map_or(0, |b| self.get(fr, b).as_u32());
                let result = op.results[0];
                fr.handles.insert(
                    result,
                    HandleObj::View {
                        kind: *kind,
                        dram: *dram,
                        base: base_elem,
                        local: if dram.is_none() {
                            vec![Word::ZERO; *size as usize]
                        } else {
                            Vec::new()
                        },
                    },
                );
                self.set_results(fr, op, &[Word::ZERO]);
            }
            OpKind::ViewRead { view, idx } => {
                let i = self.get(fr, *idx).as_u32();
                let obj = fr
                    .handles
                    .get(view)
                    .ok_or_else(|| InterpError::new("view read on unknown handle"))?
                    .clone();
                let r = match obj {
                    HandleObj::View {
                        dram: Some(d),
                        base,
                        ..
                    } => self.dram_load(d, Word(base + i)),
                    HandleObj::View {
                        dram: None, local, ..
                    } => local.get(i as usize).copied().unwrap_or(Word::ZERO),
                    HandleObj::It { .. } => {
                        return Err(InterpError::new("view read on iterator handle"))
                    }
                };
                self.set_results(fr, op, &[r]);
            }
            OpKind::ViewWrite { view, idx, val } => {
                let i = self.get(fr, *idx).as_u32();
                let v = self.get(fr, *val);
                let obj = fr
                    .handles
                    .get_mut(view)
                    .ok_or_else(|| InterpError::new("view write on unknown handle"))?;
                match obj {
                    HandleObj::View {
                        dram: Some(d),
                        base,
                        ..
                    } => {
                        let (d, base) = (*d, *base);
                        self.dram_store(d, Word(base + i), v);
                    }
                    HandleObj::View {
                        dram: None, local, ..
                    } => {
                        let len = local.len();
                        *local.get_mut(i as usize).ok_or_else(|| {
                            InterpError::new(format!("SRAM view write {i} out of {len}"))
                        })? = v;
                    }
                    HandleObj::It { .. } => {
                        return Err(InterpError::new("view write on iterator handle"))
                    }
                }
            }
            OpKind::ItNew { dram, seek, .. } => {
                let cursor = self.get(fr, *seek).as_u32();
                fr.handles.insert(
                    op.results[0],
                    HandleObj::It {
                        dram: *dram,
                        cursor,
                    },
                );
                self.set_results(fr, op, &[Word::ZERO]);
            }
            OpKind::ItDeref { it } => {
                let (d, c) = self.it_state(fr, *it)?;
                let r = self.dram_load(d, Word(c));
                self.set_results(fr, op, &[r]);
            }
            OpKind::ItPeek { it, ahead } => {
                let a = self.get(fr, *ahead).as_u32();
                let (d, c) = self.it_state(fr, *it)?;
                let r = self.dram_load(d, Word(c + a));
                self.set_results(fr, op, &[r]);
            }
            OpKind::ItWrite { it, val } => {
                let v = self.get(fr, *val);
                let (d, c) = self.it_state(fr, *it)?;
                self.dram_store(d, Word(c), v);
            }
            OpKind::ItInc { it, .. } => {
                match fr.handles.get_mut(it) {
                    Some(HandleObj::It { cursor, .. }) => *cursor += 1,
                    _ => return Err(InterpError::new("it++ on non-iterator handle")),
                };
            }
        }
        Ok(Flow::Normal)
    }

    fn it_state(&self, fr: &Frame<'_>, it: Value) -> Result<(DramRef, u32), InterpError> {
        match fr.handles.get(&it) {
            Some(HandleObj::It { dram, cursor }) => Ok((*dram, *cursor)),
            _ => Err(InterpError::new("iterator op on non-iterator handle")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::ops::{AluOp, ForeachFlags};

    fn run_main(module: &Module, args: &[Word], dram: Vec<u8>) -> (Vec<Word>, Vec<u8>) {
        let layout = DramLayout {
            base: module
                .drams
                .iter()
                .scan(0u32, |acc, d| {
                    let b = *acc;
                    *acc += 4096 * d.elem_bytes;
                    Some(b)
                })
                .collect(),
        };
        let mut mem = module.build_memory(dram.len().max(64 * 1024));
        mem.dram[..dram.len()].copy_from_slice(&dram);
        let mut interp = Interp::new(module, &layout, &mut mem);
        let out = interp.run("main", args).unwrap();
        (out, mem.dram.clone())
    }

    #[test]
    fn arith_and_return() {
        let mut m = Module::default();
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let c = b.const_i32(&mut f, 10);
        let s = b.bin(&mut f, AluOp::Mul, p, c);
        b.emit0(OpKind::Return(vec![s]));
        f.body = b.build();
        m.funcs.push(f);
        let (out, _) = run_main(&m, &[Word(7)], vec![]);
        assert_eq!(out, vec![Word(70)]);
    }

    #[test]
    fn foreach_sum_reduction() {
        // main(n) = sum over i in 0..n of i*i
        let mut m = Module::default();
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let n = f.params[0];
        let mut b = RegionBuilder::new();
        let lo = b.const_i32(&mut f, 0);
        let step = b.const_i32(&mut f, 1);
        let i = f.new_value(Ty::I32);
        let mut body = RegionBuilder::with_args(vec![i]);
        let sq = body.bin(&mut f, AluOp::Mul, i, i);
        body.emit0(OpKind::Yield(vec![sq]));
        let sum = f.new_value(Ty::I32);
        b.push(
            OpKind::Foreach {
                lo,
                hi: n,
                step,
                body: body.build(),
                reduce: vec![AluOp::Add],
                flags: ForeachFlags::default(),
            },
            vec![sum],
        );
        b.emit0(OpKind::Return(vec![sum]));
        f.body = b.build();
        m.funcs.push(f);
        let (out, _) = run_main(&m, &[Word(5)], vec![]);
        // squares of 0..5
        assert_eq!(out, vec![Word(1 + 4 + 9 + 16)]);
    }

    #[test]
    fn while_countdown() {
        // main(n): while (n > 0) { n = n - 1 }; return n
        let mut m = Module::default();
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let n = f.params[0];
        let cv = f.new_value(Ty::I32);
        let mut before = RegionBuilder::with_args(vec![cv]);
        let zero = before.const_i32(&mut f, 0);
        let c = before.bin(&mut f, AluOp::GtS, cv, zero);
        before.emit0(OpKind::Condition {
            cond: c,
            fwd: vec![cv],
        });
        let av = f.new_value(Ty::I32);
        let mut after = RegionBuilder::with_args(vec![av]);
        let one = after.const_i32(&mut f, 1);
        let dec = after.bin(&mut f, AluOp::Sub, av, one);
        after.emit0(OpKind::Yield(vec![dec]));
        let out_v = f.new_value(Ty::I32);
        let mut b = RegionBuilder::new();
        b.push(
            OpKind::While {
                inits: vec![n],
                before: before.build(),
                after: after.build(),
            },
            vec![out_v],
        );
        b.emit0(OpKind::Return(vec![out_v]));
        f.body = b.build();
        m.funcs.push(f);
        let (out, _) = run_main(&m, &[Word(9)], vec![]);
        assert_eq!(out, vec![Word(0)]);
    }

    #[test]
    fn fork_with_single_survivor() {
        // fork(3): thread 2 survives and yields its index; others exit.
        let mut m = Module::default();
        let mut f = Func::new("main", &[], vec![Ty::I32]);
        let mut b = RegionBuilder::new();
        let count = b.const_i32(&mut f, 3);
        let iv = f.new_value(Ty::I32);
        let mut body = RegionBuilder::with_args(vec![iv]);
        let two = body.const_i32(&mut f, 2);
        let is2 = body.bin(&mut f, AluOp::Eq, iv, two);
        // if !is2 { exit }
        let mut then_b = RegionBuilder::new();
        then_b.emit0(OpKind::Yield(vec![]));
        let mut else_b = RegionBuilder::new();
        else_b.emit0(OpKind::Exit);
        body.push(
            OpKind::If {
                cond: is2,
                then: then_b.build(),
                else_: else_b.build(),
            },
            vec![],
        );
        body.emit0(OpKind::Yield(vec![iv]));
        let res = f.new_value(Ty::I32);
        b.push(
            OpKind::Fork {
                count,
                body: body.build(),
            },
            vec![res],
        );
        b.emit0(OpKind::Return(vec![res]));
        f.body = b.build();
        m.funcs.push(f);
        let (out, _) = run_main(&m, &[], vec![]);
        assert_eq!(out, vec![Word(2)]);
    }

    #[test]
    fn dram_rw_and_iterators() {
        // main(): it = ReadIt(input, 0); out[0] = *it + (*it after ++).
        let mut m = Module::default();
        let input = m.add_dram("input", 1);
        let output = m.add_dram("output", 4);
        let mut f = Func::new("main", &[], vec![]);
        let mut b = RegionBuilder::new();
        let zero = b.const_i32(&mut f, 0);
        let it = b.emit(
            &mut f,
            OpKind::ItNew {
                kind: crate::ops::ItKind::Read,
                dram: input,
                seek: zero,
                tile: 16,
            },
            Ty::Handle,
        );
        let a = b.emit(&mut f, OpKind::ItDeref { it }, Ty::I32);
        b.emit0(OpKind::ItInc { it, last: None });
        let c = b.emit(&mut f, OpKind::ItDeref { it }, Ty::I32);
        let sum = b.bin(&mut f, AluOp::Add, a, c);
        b.emit0(OpKind::DramWrite {
            dram: output,
            idx: zero,
            val: sum,
        });
        b.emit0(OpKind::Return(vec![]));
        f.body = b.build();
        m.funcs.push(f);
        let mut dram = vec![0u8; 8192];
        dram[0] = 11;
        dram[1] = 22;
        let (_, dram_out) = run_main(&m, &[], dram);
        // output symbol starts at 4096 (after input's 4096 bytes).
        let v = u32::from_le_bytes(dram_out[4096..4100].try_into().unwrap());
        assert_eq!(v, 33);
    }

    #[test]
    fn fuel_limit_reported() {
        // while (1) {} must hit the fuel limit.
        let mut m = Module::default();
        let mut f = Func::new("main", &[], vec![]);
        let cv = f.new_value(Ty::I32);
        let mut before = RegionBuilder::with_args(vec![cv]);
        let one = before.const_i32(&mut f, 1);
        before.emit0(OpKind::Condition {
            cond: one,
            fwd: vec![cv],
        });
        let av = f.new_value(Ty::I32);
        let mut after = RegionBuilder::with_args(vec![av]);
        after.emit0(OpKind::Yield(vec![av]));
        let r = f.new_value(Ty::I32);
        let mut b = RegionBuilder::new();
        let init = b.const_i32(&mut f, 0);
        b.push(
            OpKind::While {
                inits: vec![init],
                before: before.build(),
                after: after.build(),
            },
            vec![r],
        );
        b.emit0(OpKind::Return(vec![]));
        f.body = b.build();
        m.funcs.push(f);
        let layout = DramLayout { base: vec![] };
        let mut mem = m.build_memory(64);
        let mut interp = Interp::new(&m, &layout, &mut mem).with_fuel(10_000);
        let err = interp.run("main", &[]).unwrap_err();
        assert!(err.message.contains("fuel"));
    }
}
