//! Modules, functions, and the building API.

use crate::ops::{Op, OpKind, Region, Value};
use crate::spans::SpanTable;
use crate::types::{DramDecl, DramRef, Ty};

/// An on-chip SRAM region declaration (instantiated in a
/// [`revet_machine::MemoryState`] in declaration order, so that
/// [`revet_machine::SramId`] indices line up).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SramDecl {
    /// Region name.
    pub name: String,
    /// Size in 32-bit words.
    pub words: u32,
}

/// An allocator-queue declaration (§V-B a).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllocDecl {
    /// Queue name.
    pub name: String,
    /// Initial pointer count (`0..max`).
    pub max: u32,
}

/// A compilation unit: functions plus module-level memory declarations.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// Functions; `main` is the entry point.
    pub funcs: Vec<Func>,
    /// DRAM symbols.
    pub drams: Vec<DramDecl>,
    /// SRAM regions (created by lowering passes).
    pub srams: Vec<SramDecl>,
    /// Allocator queues (created by lowering passes).
    pub allocs: Vec<AllocDecl>,
}

impl Module {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn func_mut(&mut self, name: &str) -> Option<&mut Func> {
        self.funcs.iter_mut().find(|f| f.name == name)
    }

    /// Declares a DRAM symbol; returns its reference.
    pub fn add_dram(&mut self, name: impl Into<String>, elem_bytes: u32) -> DramRef {
        assert!(matches!(elem_bytes, 1 | 2 | 4), "element width 1/2/4 bytes");
        let r = DramRef(self.drams.len() as u32);
        self.drams.push(DramDecl {
            name: name.into(),
            elem_bytes,
        });
        r
    }

    /// Declares an SRAM region; returns its id.
    pub fn add_sram(&mut self, name: impl Into<String>, words: u32) -> revet_machine::SramId {
        let id = revet_machine::SramId(self.srams.len() as u32);
        self.srams.push(SramDecl {
            name: name.into(),
            words,
        });
        id
    }

    /// Declares an allocator queue; returns its id.
    pub fn add_alloc(&mut self, name: impl Into<String>, max: u32) -> revet_machine::AllocId {
        let id = revet_machine::AllocId(self.allocs.len() as u32);
        self.allocs.push(AllocDecl {
            name: name.into(),
            max,
        });
        id
    }

    /// Total op count across every function (nested regions included) —
    /// the headline number pass reports track before/after each pass.
    pub fn op_count(&self) -> usize {
        self.funcs.iter().map(|f| f.count_ops(|_| true)).sum()
    }

    /// Instantiates this module's SRAM regions and allocator queues into a
    /// fresh memory state with the given DRAM size.
    pub fn build_memory(&self, dram_bytes: usize) -> revet_machine::MemoryState {
        let mut mem = revet_machine::MemoryState::with_dram_size(dram_bytes);
        for s in &self.srams {
            mem.add_sram(s.name.clone(), s.words as usize);
        }
        for a in &self.allocs {
            mem.add_alloc(a.name.clone(), a.max);
        }
        mem
    }
}

/// A function: parameters, result types, a body region, and the value table.
#[derive(Clone, PartialEq, Debug)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Parameter values (typed in the value table).
    pub params: Vec<Value>,
    /// Result types.
    pub results: Vec<Ty>,
    /// Body (terminated by `Return`).
    pub body: Region,
    /// Source attribution: per-value spans recorded by the front end (see
    /// [`SpanTable`]); empty for hand-built modules.
    pub spans: SpanTable,
    vals: Vec<Ty>,
}

impl Func {
    /// Creates an empty function with the given parameter types.
    pub fn new(name: impl Into<String>, param_tys: &[Ty], results: Vec<Ty>) -> Self {
        let mut f = Func {
            name: name.into(),
            params: Vec::new(),
            results,
            body: Region::default(),
            spans: SpanTable::new(),
            vals: Vec::new(),
        };
        for &ty in param_tys {
            let v = f.new_value(ty);
            f.params.push(v);
        }
        f
    }

    /// Allocates a new SSA value of type `ty`.
    pub fn new_value(&mut self, ty: Ty) -> Value {
        let v = Value(self.vals.len() as u32);
        self.vals.push(ty);
        v
    }

    /// The type of a value.
    ///
    /// # Panics
    ///
    /// Panics on an id from another function.
    pub fn ty(&self, v: Value) -> Ty {
        self.vals[v.0 as usize]
    }

    /// Number of values in the table.
    pub fn value_count(&self) -> usize {
        self.vals.len()
    }

    /// Walks every op in the function (pre-order, regions inside-out last).
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Op)) {
        fn go<'a>(r: &'a Region, f: &mut dyn FnMut(&'a Op)) {
            for op in &r.ops {
                f(op);
                for sub in op.kind.regions() {
                    go(sub, f);
                }
            }
        }
        go(&self.body, f);
    }

    /// Counts ops satisfying a predicate anywhere in the function.
    pub fn count_ops(&self, pred: impl Fn(&OpKind) -> bool) -> usize {
        let mut n = 0;
        self.walk(&mut |op| {
            if pred(&op.kind) {
                n += 1;
            }
        });
        n
    }

    /// The set of values with a definition site: parameters, region
    /// arguments, and op results, function-wide.
    pub fn defined_values(&self) -> std::collections::HashSet<Value> {
        let mut set: std::collections::HashSet<Value> = self.params.iter().copied().collect();
        fn go(r: &Region, set: &mut std::collections::HashSet<Value>) {
            set.extend(r.args.iter().copied());
            for op in &r.ops {
                set.extend(op.results.iter().copied());
                for sub in op.kind.regions() {
                    go(sub, set);
                }
            }
        }
        go(&self.body, &mut set);
        set
    }

    /// Span-table entries whose value no longer has a definition in the
    /// function — used by the pass manager's debug integrity check.
    pub fn dangling_spans(&self) -> Vec<Value> {
        let defined = self.defined_values();
        let mut dangling: Vec<Value> = self
            .spans
            .values()
            .filter(|v| !defined.contains(v))
            .collect();
        dangling.sort_by_key(|v| v.0);
        dangling
    }

    /// Drops span-table entries for values with no remaining definition.
    /// Passes that delete values wholesale (rather than op-by-op) call this
    /// once at the end to keep the side-table consistent.
    pub fn prune_spans(&mut self) {
        let defined = self.defined_values();
        self.spans.retain(|v| defined.contains(&v));
    }
}

/// A cursor-style builder appending ops to one region.
///
/// Typical use: make a builder for the function body, emit ops, then split
/// off nested regions with fresh builders.
#[derive(Debug)]
pub struct RegionBuilder {
    ops: Vec<Op>,
    args: Vec<Value>,
}

impl Default for RegionBuilder {
    fn default() -> Self {
        RegionBuilder::new()
    }
}

impl RegionBuilder {
    /// An empty builder with no region arguments.
    pub fn new() -> Self {
        RegionBuilder {
            ops: Vec::new(),
            args: Vec::new(),
        }
    }

    /// A builder whose region binds the given arguments.
    pub fn with_args(args: Vec<Value>) -> Self {
        RegionBuilder {
            ops: Vec::new(),
            args,
        }
    }

    /// Appends an op with results allocated by the caller.
    pub fn push(&mut self, kind: OpKind, results: Vec<Value>) {
        self.ops.push(Op { kind, results });
    }

    /// Appends an op with a single result allocated from `func`.
    pub fn emit(&mut self, func: &mut Func, kind: OpKind, ty: Ty) -> Value {
        let v = func.new_value(ty);
        self.push(kind, vec![v]);
        v
    }

    /// Appends a result-less op.
    pub fn emit0(&mut self, kind: OpKind) {
        self.push(kind, vec![]);
    }

    /// Emits an `i32` constant.
    pub fn const_i32(&mut self, func: &mut Func, v: i64) -> Value {
        self.emit(func, OpKind::ConstI(v, Ty::I32), Ty::I32)
    }

    /// Emits a binary ALU op.
    pub fn bin(&mut self, func: &mut Func, op: crate::ops::AluOp, a: Value, b: Value) -> Value {
        self.emit(func, OpKind::Bin(op, a, b), Ty::I32)
    }

    /// The kind of the last op appended, if any (used to detect regions that
    /// already ended in a terminator).
    pub fn last_kind(&self) -> Option<&OpKind> {
        self.ops.last().map(|o| &o.kind)
    }

    /// Finishes the region.
    pub fn build(self) -> Region {
        Region {
            args: self.args,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AluOp;

    #[test]
    fn build_simple_func() {
        let mut f = Func::new("add1", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let one = b.const_i32(&mut f, 1);
        let sum = b.bin(&mut f, AluOp::Add, p, one);
        b.emit0(OpKind::Return(vec![sum]));
        f.body = b.build();
        assert_eq!(f.value_count(), 3);
        assert_eq!(f.ty(sum), Ty::I32);
        assert_eq!(f.count_ops(|k| matches!(k, OpKind::Bin(..))), 1);
    }

    #[test]
    fn module_decls() {
        let mut m = Module::default();
        let d = m.add_dram("input", 1);
        let s = m.add_sram("buf", 64);
        let a = m.add_alloc("ptrs", 16);
        assert_eq!(d.0, 0);
        assert_eq!(s.0, 0);
        assert_eq!(a.0, 0);
        let mem = m.build_memory(128);
        assert_eq!(mem.dram.len(), 128);
        assert_eq!(mem.sram_count(), 1);
        assert_eq!(mem.alloc_available(a), 16);
    }

    #[test]
    #[should_panic(expected = "element width")]
    fn bad_dram_width() {
        Module::default().add_dram("x", 3);
    }
}
