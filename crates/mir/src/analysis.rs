//! Per-function analyses computed on demand and cached by the
//! [`AnalysisManager`](crate::AnalysisManager).
//!
//! Analyses are pure functions of a [`Func`]: they own their data (no
//! borrows into the IR), so a pass may query one, then mutate the function,
//! and the manager invalidates the stale copy when the pass reports a
//! change.

use crate::func::Func;
use crate::ops::{Region, Value};

/// Definition sites and use counts for every SSA value in one function.
///
/// A value is *defined* by a parameter, a region argument, or an op result;
/// it is *used* each time it appears as a direct operand of any op anywhere
/// in the function (including nested regions and `Predicated` inners).
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    uses: Vec<u32>,
    defined: Vec<bool>,
}

impl DefUse {
    /// Computes the chains for `f`.
    pub fn compute(f: &Func) -> DefUse {
        let n = f.value_count();
        let mut a = DefUse {
            uses: vec![0; n],
            defined: vec![false; n],
        };
        for p in &f.params {
            a.defined[p.0 as usize] = true;
        }
        // `get_mut` guards keep the analysis total even over modules that
        // would not verify (out-of-table value references) — analyses must
        // never panic before the driver's own verification can report.
        fn go(r: &Region, a: &mut DefUse) {
            for arg in &r.args {
                if let Some(d) = a.defined.get_mut(arg.0 as usize) {
                    *d = true;
                }
            }
            for op in &r.ops {
                for v in op.kind.operands() {
                    if let Some(u) = a.uses.get_mut(v.0 as usize) {
                        *u += 1;
                    }
                }
                for res in &op.results {
                    if let Some(d) = a.defined.get_mut(res.0 as usize) {
                        *d = true;
                    }
                }
                for sub in op.kind.regions() {
                    go(sub, a);
                }
            }
        }
        go(&f.body, &mut a);
        a
    }

    /// How many times `v` appears as an operand.
    pub fn use_count(&self, v: Value) -> u32 {
        self.uses.get(v.0 as usize).copied().unwrap_or(0)
    }

    /// True when `v` is defined by a parameter, region argument, or op
    /// result.
    pub fn is_defined(&self, v: Value) -> bool {
        self.defined.get(v.0 as usize).copied().unwrap_or(false)
    }
}

/// Which values the function's observable behavior depends on.
///
/// A value is *live* when it is (transitively) needed by an op that cannot
/// be deleted: a terminator, a memory operation, or any region-bearing op.
/// Dead-code elimination removes pure ops none of whose results are live.
#[derive(Clone, Debug, Default)]
pub struct Liveness {
    live: Vec<bool>,
}

impl Liveness {
    /// Computes liveness for `f`.
    ///
    /// Walks ops in reverse program order (uses strictly follow
    /// definitions in this IR, so one backward sweep reaches the fixpoint):
    /// non-pure ops seed their operands live; a pure op propagates liveness
    /// from its results to its operands.
    pub fn compute(f: &Func) -> Liveness {
        let mut a = Liveness {
            live: vec![false; f.value_count()],
        };
        // Guarded writes for the same reason as `DefUse::compute`: stay
        // total over modules that would not verify.
        fn mark(live: &mut [bool], v: crate::ops::Value) {
            if let Some(s) = live.get_mut(v.0 as usize) {
                *s = true;
            }
        }
        fn go(r: &Region, live: &mut [bool]) {
            for op in r.ops.iter().rev() {
                if op.kind.is_pure() {
                    if op
                        .results
                        .iter()
                        .any(|v| live.get(v.0 as usize).copied().unwrap_or(false))
                    {
                        for v in op.kind.operands() {
                            mark(live, v);
                        }
                    }
                } else {
                    // Nested regions run "inside" the op: visit them first
                    // so their uses are seen before earlier defining ops.
                    for sub in op.kind.regions().iter().rev() {
                        go(sub, live);
                    }
                    for v in op.kind.operands() {
                        mark(live, v);
                    }
                }
            }
        }
        go(&f.body, &mut a.live);
        a
    }

    /// True when the function's behavior (may) depend on `v`.
    pub fn is_live(&self, v: Value) -> bool {
        self.live.get(v.0 as usize).copied().unwrap_or(false)
    }
}

/// Op population counts — the cheap analysis behind pass reports and
/// pipeline gating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Every op, including nested regions.
    pub total: usize,
    /// Foldable/erasable pure ops (`const`/`bin`/`select`/`cast`).
    pub pure_ops: usize,
    /// Memory-touching ops.
    pub memory: usize,
    /// High-level Revet-dialect ops still awaiting lowering.
    pub high_level: usize,
}

impl OpStats {
    /// Counts the ops of `f`.
    pub fn compute(f: &Func) -> OpStats {
        let mut s = OpStats::default();
        f.walk(&mut |op| {
            s.total += 1;
            if op.kind.is_pure() {
                s.pure_ops += 1;
            }
            if op.kind.is_memory() {
                s.memory += 1;
            }
            if op.kind.is_high_level() {
                s.high_level += 1;
            }
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::ops::{AluOp, OpKind};
    use crate::types::Ty;

    fn sample() -> Func {
        // p -> one = 1; dead = p + p; sum = p + one; return sum
        let mut f = Func::new("t", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let one = b.const_i32(&mut f, 1);
        let _dead = b.bin(&mut f, AluOp::Add, p, p);
        let sum = b.bin(&mut f, AluOp::Add, p, one);
        b.emit0(OpKind::Return(vec![sum]));
        f.body = b.build();
        f
    }

    #[test]
    fn def_use_counts() {
        let f = sample();
        let du = DefUse::compute(&f);
        let p = f.params[0];
        assert!(du.is_defined(p));
        assert_eq!(du.use_count(p), 3, "p used by dead add (×2) and sum");
        assert_eq!(du.use_count(Value(1)), 1, "one used once");
        assert_eq!(du.use_count(Value(2)), 0, "dead add unused");
        assert_eq!(du.use_count(Value(3)), 1, "sum used by return");
    }

    #[test]
    fn liveness_skips_dead_pure_chain() {
        let f = sample();
        let lv = Liveness::compute(&f);
        assert!(lv.is_live(f.params[0]));
        assert!(lv.is_live(Value(1)), "one feeds the returned sum");
        assert!(!lv.is_live(Value(2)), "dead add result not live");
        assert!(lv.is_live(Value(3)));
    }

    #[test]
    fn op_stats_population() {
        let s = OpStats::compute(&sample());
        assert_eq!(s.total, 4);
        assert_eq!(s.pure_ops, 3);
        assert_eq!(s.memory, 0);
        assert_eq!(s.high_level, 0);
    }
}
