//! # revet-mir — the Revet compiler's SSA intermediate representation
//!
//! An MLIR-inspired IR (§V of the paper, Fig. 8): SSA values, ops with
//! nested regions, a structured-control-flow dialect (`if`/`while`/
//! `foreach`/`replicate`/`fork`), physical memory ops (SRAM/DRAM/allocator
//! queues), and a high-level Revet dialect (views & iterators, Table I) that
//! front-end lowering removes.
//!
//! The crate also provides:
//!
//! - [`verify_module`]: a structural verifier run between passes,
//! - [`print_module`]/[`print_func`]: a textual form for debugging,
//! - [`Interp`]: a **reference interpreter** defining sequential semantics —
//!   the oracle against which every lowering pass and the final dataflow
//!   execution are differentially tested,
//! - a generic **pass framework** ([`Pass`], [`ModulePass`],
//!   [`PassManager`], [`AnalysisManager`]) with cached analyses
//!   ([`DefUse`], [`Liveness`], [`OpStats`]) and per-pass statistics
//!   ([`PassReport`]),
//! - the classical optimizations built on it: [`ConstFold`], [`Simplify`],
//!   [`Cse`], and [`Dce`].
//!
//! ## Example
//!
//! ```
//! use revet_mir::{Func, Module, RegionBuilder, OpKind, AluOp, Ty};
//! use revet_mir::{DramLayout, Interp};
//! use revet_sltf::Word;
//!
//! let mut m = Module::default();
//! let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
//! let p = f.params[0];
//! let mut b = RegionBuilder::new();
//! let one = b.const_i32(&mut f, 1);
//! let s = b.bin(&mut f, AluOp::Add, p, one);
//! b.emit0(OpKind::Return(vec![s]));
//! f.body = b.build();
//! m.funcs.push(f);
//! revet_mir::verify_module(&m).unwrap();
//!
//! let layout = DramLayout::default();
//! let mut mem = m.build_memory(64);
//! let out = Interp::new(&m, &layout, &mut mem).run("main", &[Word(41)]).unwrap();
//! assert_eq!(out, vec![Word(42)]);
//! ```

#![warn(missing_docs)]

mod analysis;
mod func;
mod interp;
mod ops;
mod opt;
mod pass;
mod print;
mod spans;
mod types;
mod verify;

pub use analysis::{DefUse, Liveness, OpStats};
pub use func::{AllocDecl, Func, Module, RegionBuilder, SramDecl};
pub use interp::{Interp, InterpError};
pub use ops::{AluOp, ForeachFlags, ItKind, Op, OpKind, Region, Value, ViewKind};
pub use opt::{ConstFold, Cse, Dce, Simplify, SinkConsts};
pub use pass::{
    AnalysisManager, ModuleAnalysisManager, ModulePass, Pass, PassManager, PassReport, PassResult,
    PassStat,
};
pub use print::{print_func, print_module};
pub use spans::SpanTable;
pub use types::{DramDecl, DramLayout, DramRef, Ty};
pub use verify::{verify_func, verify_module, VerifyError};
