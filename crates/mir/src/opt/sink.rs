//! Constant sinking (rematerialization) into nested regions.

use crate::ops::{Op, OpKind, Region, Value};
use crate::pass::{AnalysisManager, Pass, PassResult};
use crate::{Func, Ty};
use std::collections::{HashMap, HashSet};

/// Rematerializes constants inside the nested regions that use them, so a
/// region never has a *free use* of a constant defined in an enclosing
/// region.
///
/// Why this matters: the dataflow lowering turns every free use of a
/// nested region into routed bandwidth — while loops thread it through the
/// recirculating loop tuple (widening the packed backedge and adding an
/// exit-side reorder), foreach/replicate bodies broadcast it per element
/// or lane. A constant costs nothing to recompute locally, so threading
/// one through a loop is pure overhead. The frontend naturally emits
/// constants at their use sites, but [`super::Cse`] — which treats
/// enclosing-region expressions as available inside — merges those copies
/// upward, silently converting "free" constants into loop-carried state.
/// This pass runs after CSE and reverses exactly that effect across region
/// boundaries (one copy *per region* is kept: sunk constants are still
/// deduplicated within each region); the trailing DCE deletes enclosing
/// definitions that lose their last use.
pub struct SinkConsts;

impl Pass for SinkConsts {
    fn name(&self) -> &str {
        "sink_consts"
    }

    fn run(&self, f: &mut Func, _am: &mut AnalysisManager) -> PassResult {
        let mut consts: HashMap<Value, (i64, Ty)> = HashMap::new();
        collect_consts(&f.body, &mut consts);
        if consts.is_empty() {
            return PassResult::Unchanged;
        }
        let mut body = std::mem::take(&mut f.body);
        let mut changed = false;
        sink_region(&mut body, f, &mut consts, &mut changed);
        f.body = body;
        PassResult::of(changed)
    }
}

fn collect_consts(region: &Region, consts: &mut HashMap<Value, (i64, Ty)>) {
    for op in &region.ops {
        if let OpKind::ConstI(v, ty) = op.kind {
            consts.insert(op.results[0], (v, ty));
        }
        for sub in op.kind.regions() {
            collect_consts(sub, consts);
        }
    }
}

/// Values defined inside `region`: its block arguments plus every op
/// result, recursively through nested regions.
fn collect_defined(region: &Region, defined: &mut HashSet<Value>) {
    defined.extend(region.args.iter().copied());
    for op in &region.ops {
        defined.extend(op.results.iter().copied());
        for sub in op.kind.regions() {
            collect_defined(sub, defined);
        }
    }
}

/// Every operand used inside `region`, recursively, in first-use order.
fn collect_used(region: &Region, used: &mut Vec<Value>) {
    for op in &region.ops {
        used.extend(op.kind.operands());
        for sub in op.kind.regions() {
            collect_used(sub, used);
        }
    }
}

fn remap_uses(region: &mut Region, map: &HashMap<Value, Value>) {
    for op in &mut region.ops {
        op.kind
            .map_operands(&mut |v| map.get(&v).copied().unwrap_or(v));
        for sub in op.kind.regions_mut() {
            remap_uses(sub, map);
        }
    }
}

fn sink_region(
    region: &mut Region,
    f: &mut Func,
    consts: &mut HashMap<Value, (i64, Ty)>,
    changed: &mut bool,
) {
    for op in &mut region.ops {
        for sub in op.kind.regions_mut() {
            let mut defined = HashSet::new();
            collect_defined(sub, &mut defined);
            let mut used = Vec::new();
            collect_used(sub, &mut used);
            let mut map: HashMap<Value, Value> = HashMap::new();
            let mut locals: Vec<Op> = Vec::new();
            for v in used {
                if defined.contains(&v) || map.contains_key(&v) {
                    continue;
                }
                let Some(&(k, ty)) = consts.get(&v) else {
                    continue;
                };
                let fresh = f.new_value(ty);
                locals.push(Op {
                    kind: OpKind::ConstI(k, ty),
                    results: vec![fresh],
                });
                map.insert(v, fresh);
                consts.insert(fresh, (k, ty));
            }
            if !map.is_empty() {
                remap_uses(sub, &map);
                sub.ops.splice(0..0, locals);
                *changed = true;
            }
            // Descend: a sub-sub-region now freely uses this region's
            // local copy and gets its own in turn.
            sink_region(sub, f, consts, changed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::ops::AluOp;
    use crate::pass::PassManager;
    use crate::types::DramLayout;
    use crate::{Dce, Interp, Module};
    use revet_machine::MemoryState;
    use revet_sltf::Word;

    /// Builds `while (p, 0) { cond: iter > 10 } do { yield iter - 10,
    /// acc + 1 }` with the `10` defined once in the func body — the shape
    /// CSE leaves behind when it hoists region-local constants.
    fn while_with_outer_const() -> Module {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let c = b.const_i32(&mut f, 10);
        let zero = b.const_i32(&mut f, 0);
        let (iter, acc) = (f.new_value(Ty::I32), f.new_value(Ty::I32));
        let mut before = RegionBuilder::with_args(vec![iter, acc]);
        let cond = before.bin(&mut f, AluOp::GtU, iter, c);
        before.emit0(OpKind::Condition {
            cond,
            fwd: vec![iter, acc],
        });
        let (bi, ba) = (f.new_value(Ty::I32), f.new_value(Ty::I32));
        let mut after = RegionBuilder::with_args(vec![bi, ba]);
        let next = after.bin(&mut f, AluOp::Sub, bi, c);
        let one = after.const_i32(&mut f, 1);
        let bumped = after.bin(&mut f, AluOp::Add, ba, one);
        after.emit0(OpKind::Yield(vec![next, bumped]));
        let (r0, r1) = (f.new_value(Ty::I32), f.new_value(Ty::I32));
        b.push(
            OpKind::While {
                inits: vec![p, zero],
                before: before.build(),
                after: after.build(),
            },
            vec![r0, r1],
        );
        let sum = b.bin(&mut f, AluOp::Add, r0, r1);
        b.emit0(OpKind::Return(vec![sum]));
        f.body = b.build();
        let mut m = Module::default();
        m.funcs.push(f);
        m
    }

    fn interpret(m: &Module, arg: u32) -> Vec<Word> {
        let layout = DramLayout::default();
        let mut mem = MemoryState::default();
        Interp::new(m, &layout, &mut mem)
            .run("main", &[Word(arg)])
            .unwrap()
    }

    #[test]
    fn outer_const_is_rematerialized_per_region() {
        let mut m = while_with_outer_const();
        let mut pm = PassManager::new();
        pm.add(SinkConsts).add(Dce);
        pm.run(&mut m);
        crate::verify_module(&m).unwrap();
        let f = m.func("main").unwrap();
        let while_op = f
            .body
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::While { .. }))
            .unwrap();
        let OpKind::While { before, after, .. } = &while_op.kind else {
            unreachable!()
        };
        let has_ten = |r: &Region| {
            r.ops
                .iter()
                .any(|o| matches!(o.kind, OpKind::ConstI(10, Ty::I32)))
        };
        assert!(has_ten(before), "condition region gets its own copy");
        assert!(has_ten(after), "body region gets its own copy");
        // The enclosing `10` lost its last use and died in DCE (the `0`
        // stays: it is a while *init*, used by the op in the outer region).
        assert!(
            !has_ten(&f.body),
            "enclosing const must be dead after sinking"
        );
        // No sub-region freely uses a constant defined outside it anymore.
        let mut consts = HashMap::new();
        collect_consts(&f.body, &mut consts);
        for op in &f.body.ops {
            for sub in op.kind.regions() {
                let mut defined = HashSet::new();
                collect_defined(sub, &mut defined);
                let mut used = Vec::new();
                collect_used(sub, &mut used);
                for v in used {
                    assert!(
                        defined.contains(&v) || !consts.contains_key(&v),
                        "free const use of %{} survived sinking",
                        v.0
                    );
                }
            }
        }
    }

    #[test]
    fn sinking_round_trips_interpreted_results() {
        let m0 = while_with_outer_const();
        let base = interpret(&m0, 137);
        let mut m = while_with_outer_const();
        let mut pm = PassManager::new();
        pm.add(SinkConsts).add(Dce);
        pm.run(&mut m);
        crate::verify_module(&m).unwrap();
        assert_eq!(interpret(&m, 137), base);
    }

    #[test]
    fn const_only_used_outside_stays_put() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let c = b.const_i32(&mut f, 3);
        let s = b.bin(&mut f, AluOp::Add, p, c);
        b.emit0(OpKind::Return(vec![s]));
        f.body = b.build();
        let mut m = Module::default();
        m.funcs.push(f);
        let mut pm = PassManager::new();
        pm.add(SinkConsts);
        let report = pm.run(&mut m);
        assert!(
            !report.passes.iter().any(|p| p.changed),
            "nothing to sink in a flat function"
        );
    }
}
