//! Algebraic identity and select simplification.

use super::{const_repr, materialize, resolve};
use crate::ops::{AluOp, OpKind, Region, Value};
use crate::pass::{AnalysisManager, Pass, PassResult};
use crate::{Func, Ty};
use revet_sltf::Word;
use std::collections::HashMap;

/// Strength-reduces pure ops using algebraic identities:
///
/// - `x+0`, `x-0`, `x*1`, `x/1`, `x|0`, `x^0`, `x<<0`, `x>>0`, `x&x`,
///   `x|x`, `min(x,x)`, `max(x,x)` → `x` (uses remapped to the operand),
/// - `x-x`, `x^x`, `x*0`, `x&0`, `x%1`, and self-comparisons → a constant,
/// - `select(c, t, t)` → `t`; `select(const c, t, e)` → the taken arm.
///
/// A use-remap is only installed when the declared types of the result and
/// the replacement value match (the subword packer keys on declared types);
/// bypassed ops are left in place for the DCE sweep that follows in the
/// pipeline.
pub struct Simplify;

impl Pass for Simplify {
    fn name(&self) -> &str {
        "simplify"
    }

    fn run(&self, f: &mut Func, _am: &mut AnalysisManager) -> PassResult {
        let tys: Vec<_> = (0..f.value_count())
            .map(|i| f.ty(Value(i as u32)))
            .collect();
        let mut cx = Cx {
            known: HashMap::new(),
            remap: HashMap::new(),
            tys,
            changed: false,
        };
        simplify_region(&mut f.body, &mut cx);
        PassResult::of(cx.changed)
    }
}

struct Cx {
    known: HashMap<Value, Word>,
    remap: HashMap<Value, Value>,
    tys: Vec<Ty>,
    changed: bool,
}

impl Cx {
    fn ty(&self, v: Value) -> Ty {
        self.tys[v.0 as usize]
    }

    /// Installs `r → v` when the declared types agree.
    fn try_remap(&mut self, r: Value, v: Value) -> bool {
        if self.ty(r) == self.ty(v) {
            let target = resolve(&self.remap, v);
            self.remap.insert(r, target);
            self.changed = true;
            true
        } else {
            false
        }
    }

    fn word(&self, v: Value) -> Option<Word> {
        self.known.get(&v).copied()
    }
}

/// The constant replacement for ops that simplify to a literal, if the
/// literal round-trips through the result's declared type.
fn to_const(cx: &Cx, r: Value, w: Word) -> Option<OpKind> {
    let ty = cx.ty(r);
    const_repr(w, ty).map(|k| OpKind::ConstI(k, ty))
}

fn simplify_region(region: &mut Region, cx: &mut Cx) {
    for op in &mut region.ops {
        op.kind.map_operands(&mut |v| resolve(&cx.remap, v));
        match &op.kind {
            OpKind::ConstI(v, ty) => {
                cx.known.insert(op.results[0], materialize(*v, *ty));
            }
            OpKind::Bin(alu, a, b) => {
                let r = op.results[0];
                let (a, b) = (*a, *b);
                let (wa, wb) = (cx.word(a), cx.word(b));
                if let Some(OpKind::ConstI(v, ty)) = simplify_bin(cx, r, *alu, a, b, wa, wb) {
                    cx.known.insert(r, materialize(v, ty));
                    op.kind = OpKind::ConstI(v, ty);
                    cx.changed = true;
                }
            }
            OpKind::Select(c, t, e) => {
                let r = op.results[0];
                let (c, t, e) = (*c, *t, *e);
                if t == e {
                    cx.try_remap(r, t);
                } else if let Some(wc) = cx.word(c) {
                    cx.try_remap(r, if wc.as_bool() { t } else { e });
                }
            }
            _ => {}
        }
        for sub in op.kind.regions_mut() {
            simplify_region(sub, cx);
        }
    }
}

/// Applies binary identities. Remaps are installed directly on `cx`;
/// constant rewrites are returned for the caller to install (so it can
/// update the known-constants map too).
fn simplify_bin(
    cx: &mut Cx,
    r: Value,
    alu: AluOp,
    a: Value,
    b: Value,
    wa: Option<Word>,
    wb: Option<Word>,
) -> Option<OpKind> {
    let zero = |cx: &Cx| to_const(cx, r, Word(0));
    let one = |cx: &Cx| to_const(cx, r, Word(1));
    let a_zero = wa == Some(Word(0));
    let b_zero = wb == Some(Word(0));
    let a_one = wa == Some(Word(1));
    let b_one = wb == Some(Word(1));
    match alu {
        AluOp::Add => {
            if b_zero {
                cx.try_remap(r, a);
            } else if a_zero {
                cx.try_remap(r, b);
            }
            None
        }
        AluOp::Sub => {
            if a == b {
                return zero(cx);
            }
            if b_zero {
                cx.try_remap(r, a);
            }
            None
        }
        AluOp::Mul => {
            if a_zero || b_zero {
                return zero(cx);
            }
            if b_one {
                cx.try_remap(r, a);
            } else if a_one {
                cx.try_remap(r, b);
            }
            None
        }
        AluOp::DivS | AluOp::DivU => {
            if b_one {
                cx.try_remap(r, a);
            }
            None
        }
        AluOp::RemS | AluOp::RemU => {
            if b_one {
                return zero(cx);
            }
            None
        }
        AluOp::And => {
            if a_zero || b_zero {
                return zero(cx);
            }
            if a == b {
                cx.try_remap(r, a);
            }
            None
        }
        AluOp::Or => {
            if a == b || b_zero {
                cx.try_remap(r, a);
            } else if a_zero {
                cx.try_remap(r, b);
            }
            None
        }
        AluOp::Xor => {
            if a == b {
                return zero(cx);
            }
            if b_zero {
                cx.try_remap(r, a);
            } else if a_zero {
                cx.try_remap(r, b);
            }
            None
        }
        AluOp::Shl | AluOp::ShrU | AluOp::ShrS | AluOp::Rotl => {
            if b_zero {
                cx.try_remap(r, a);
            }
            None
        }
        AluOp::Eq | AluOp::LeS | AluOp::LeU | AluOp::GeS | AluOp::GeU => {
            if a == b {
                return one(cx);
            }
            None
        }
        AluOp::Ne | AluOp::LtS | AluOp::LtU | AluOp::GtS | AluOp::GtU => {
            if a == b {
                return zero(cx);
            }
            None
        }
        AluOp::MinS | AluOp::MinU | AluOp::MaxS | AluOp::MaxU => {
            if a == b {
                cx.try_remap(r, a);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::opt::Dce;
    use crate::pass::PassManager;
    use crate::Module;

    fn run(f: Func) -> Module {
        let mut m = Module::default();
        m.funcs.push(f);
        let mut pm = PassManager::new();
        pm.add(Simplify).add(Dce);
        pm.run(&mut m);
        m
    }

    #[test]
    fn add_zero_bypassed_and_swept() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let z = b.const_i32(&mut f, 0);
        let s = b.bin(&mut f, AluOp::Add, p, z);
        let t = b.bin(&mut f, AluOp::Mul, s, s);
        b.emit0(OpKind::Return(vec![t]));
        f.body = b.build();
        let m = run(f);
        let f = m.func("main").unwrap();
        // p+0 bypassed to p; t = p*p; const 0 and the add swept by DCE.
        assert_eq!(f.body.ops.len(), 2);
        assert!(matches!(f.body.ops[0].kind, OpKind::Bin(AluOp::Mul, a, b) if a == p && b == p));
    }

    #[test]
    fn self_comparison_becomes_constant() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let x = b.bin(&mut f, AluOp::Sub, p, p); // 0
        let y = b.bin(&mut f, AluOp::Eq, p, p); // 1
        let s = b.bin(&mut f, AluOp::Add, x, y);
        b.emit0(OpKind::Return(vec![s]));
        f.body = b.build();
        let m = run(f);
        let f = m.func("main").unwrap();
        // x → 0, y → 1, s = 0 + y → y; DCE sweeps x and the add, leaving
        // just the constant 1 and the return of it.
        assert_eq!(f.body.ops.len(), 2);
        assert!(f
            .body
            .ops
            .iter()
            .any(|o| matches!(o.kind, OpKind::ConstI(1, _))));
        assert!(matches!(&f.body.ops[1].kind, OpKind::Return(vs) if vs[0] == y));
    }

    #[test]
    fn select_constant_condition_takes_arm() {
        let mut f = Func::new("main", &[Ty::I32, Ty::I32], vec![Ty::I32]);
        let (a, b2) = (f.params[0], f.params[1]);
        let mut b = RegionBuilder::new();
        let c = b.const_i32(&mut f, 1);
        let sel = b.emit(&mut f, OpKind::Select(c, a, b2), Ty::I32);
        b.emit0(OpKind::Return(vec![sel]));
        f.body = b.build();
        let m = run(f);
        let f = m.func("main").unwrap();
        assert_eq!(f.body.ops.len(), 1, "only the return remains");
        assert!(matches!(&f.body.ops[0].kind, OpKind::Return(vs) if vs[0] == a));
    }

    #[test]
    fn type_mismatched_identity_is_left_alone() {
        // r: I8 = p(I32) + 0 — remap would change the declared type.
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let z = b.const_i32(&mut f, 0);
        let r = f.new_value(Ty::I8);
        b.push(OpKind::Bin(AluOp::Add, p, z), vec![r]);
        let out = b.bin(&mut f, AluOp::Add, r, p);
        b.emit0(OpKind::Return(vec![out]));
        f.body = b.build();
        let m = run(f);
        let f = m.func("main").unwrap();
        assert!(
            f.body.ops.iter().any(|o| o.results.first() == Some(&r)),
            "I8-typed add must survive"
        );
    }
}
