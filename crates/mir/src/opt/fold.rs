//! Constant folding.

use super::{const_repr, materialize};
use crate::ops::{OpKind, Region, Value};
use crate::pass::{AnalysisManager, Pass, PassResult};
use crate::Func;
use revet_sltf::Word;
use std::collections::HashMap;

/// Folds pure ops whose operands are all known constants into `ConstI`.
///
/// Handles `Bin` (via the machine's total ALU semantics — division by zero
/// folds to 0 exactly as the hardware defines), fully-constant `Select`,
/// and `Cast`. A fold is only applied when the resulting constant
/// materializes bit-identically under the result's declared type; folds
/// that would not round-trip (e.g. a 32-bit result assigned to an `I8`
/// value) are skipped.
///
/// Rewrites ops in place (result values keep their ids, so span-table
/// attribution survives); never deletes anything.
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &str {
        "const_fold"
    }

    fn run(&self, f: &mut Func, _am: &mut AnalysisManager) -> PassResult {
        // Value ids are unique function-wide, so one flat map of known
        // constants is sound across all regions: a value defined by a
        // `ConstI` holds that word on every execution path reaching a use.
        let mut known: HashMap<Value, Word> = HashMap::new();
        let tys: Vec<_> = (0..f.value_count())
            .map(|i| f.ty(Value(i as u32)))
            .collect();
        let mut changed = false;
        fold_region(&mut f.body, &mut known, &tys, &mut changed);
        PassResult::of(changed)
    }
}

fn fold_region(
    r: &mut Region,
    known: &mut HashMap<Value, Word>,
    tys: &[crate::Ty],
    changed: &mut bool,
) {
    for op in &mut r.ops {
        let folded: Option<Word> = match &op.kind {
            OpKind::ConstI(v, ty) => {
                known.insert(op.results[0], materialize(*v, *ty));
                None
            }
            OpKind::Bin(alu, a, b) => match (known.get(a), known.get(b)) {
                (Some(&wa), Some(&wb)) => Some(alu.apply(wa, wb)),
                _ => None,
            },
            OpKind::Select(c, t, e) => match (known.get(c), known.get(t), known.get(e)) {
                (Some(&wc), Some(&wt), Some(&we)) => Some(if wc.as_bool() { wt } else { we }),
                _ => None,
            },
            OpKind::Cast { v, to, signed } => known.get(v).map(|&w| match (to, signed) {
                (crate::Ty::I8, false) => Word(w.as_u32() & 0xFF),
                (crate::Ty::I8, true) => Word::from_i32(w.as_u32() as u8 as i8 as i32),
                (crate::Ty::I16, false) => Word(w.as_u32() & 0xFFFF),
                (crate::Ty::I16, true) => Word::from_i32(w.as_u32() as u16 as i16 as i32),
                _ => w,
            }),
            _ => None,
        };
        if let Some(w) = folded {
            let res = op.results[0];
            let ty = tys[res.0 as usize];
            if let Some(k) = const_repr(w, ty) {
                op.kind = OpKind::ConstI(k, ty);
                known.insert(res, w);
                *changed = true;
            }
        }
        for sub in op.kind.regions_mut() {
            fold_region(sub, known, tys, changed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::ops::AluOp;
    use crate::pass::PassManager;
    use crate::{Module, Ty};

    fn run(f: Func) -> Module {
        let mut m = Module::default();
        m.funcs.push(f);
        let mut pm = PassManager::new();
        pm.add(ConstFold);
        let report = pm.run(&mut m);
        assert!(report.passes[0].changed);
        m
    }

    #[test]
    fn folds_constant_chain() {
        let mut f = Func::new("main", &[], vec![Ty::I32]);
        let mut b = RegionBuilder::new();
        let two = b.const_i32(&mut f, 2);
        let three = b.const_i32(&mut f, 3);
        let sum = b.bin(&mut f, AluOp::Add, two, three); // 5
        let sq = b.bin(&mut f, AluOp::Mul, sum, sum); // 25
        b.emit0(OpKind::Return(vec![sq]));
        f.body = b.build();
        let m = run(f);
        let f = m.func("main").unwrap();
        assert_eq!(
            f.count_ops(|k| matches!(k, OpKind::Bin(..))),
            0,
            "both bins folded"
        );
        assert!(f
            .body
            .ops
            .iter()
            .any(|o| matches!(o.kind, OpKind::ConstI(25, _))));
    }

    #[test]
    fn div_by_zero_folds_to_machine_zero() {
        let mut f = Func::new("main", &[], vec![Ty::I32]);
        let mut b = RegionBuilder::new();
        let x = b.const_i32(&mut f, 7);
        let z = b.const_i32(&mut f, 0);
        let q = b.bin(&mut f, AluOp::DivS, x, z);
        b.emit0(OpKind::Return(vec![q]));
        f.body = b.build();
        let m = run(f);
        assert!(m
            .func("main")
            .unwrap()
            .body
            .ops
            .iter()
            .any(|o| matches!(o.kind, OpKind::ConstI(0, _))));
    }

    #[test]
    fn non_round_trip_fold_is_skipped() {
        // 200 + 200 = 400 does not fit an I8-typed result; must not fold.
        let mut f = Func::new("main", &[], vec![Ty::I32]);
        let mut b = RegionBuilder::new();
        let a = b.const_i32(&mut f, 200);
        let sum = f.new_value(Ty::I8);
        b.push(OpKind::Bin(AluOp::Add, a, a), vec![sum]);
        let wide = b.bin(&mut f, AluOp::Add, sum, a);
        b.emit0(OpKind::Return(vec![wide]));
        f.body = b.build();
        let mut m = Module::default();
        m.funcs.push(f);
        let mut pm = PassManager::new();
        pm.add(ConstFold);
        pm.run(&mut m);
        let f = m.func("main").unwrap();
        assert!(
            f.body
                .ops
                .iter()
                .any(|o| matches!(o.kind, OpKind::Bin(AluOp::Add, ..)) && o.results[0] == sum),
            "I8-typed 400 must stay unfolded"
        );
    }

    #[test]
    fn folds_inside_nested_regions() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let two = b.const_i32(&mut f, 2);
        let mut tb = RegionBuilder::new();
        let four = tb.bin(&mut f, AluOp::Mul, two, two);
        tb.emit0(OpKind::Yield(vec![four]));
        let mut eb = RegionBuilder::new();
        eb.emit0(OpKind::Yield(vec![two]));
        let res = f.new_value(Ty::I32);
        b.push(
            OpKind::If {
                cond: p,
                then: tb.build(),
                else_: eb.build(),
            },
            vec![res],
        );
        b.emit0(OpKind::Return(vec![res]));
        f.body = b.build();
        let m = run(f);
        assert_eq!(
            m.func("main")
                .unwrap()
                .count_ops(|k| matches!(k, OpKind::Bin(..))),
            0
        );
    }
}
