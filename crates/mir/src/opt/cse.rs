//! Local (scoped) common-subexpression elimination.

use super::{is_commutative, resolve};
use crate::ops::{AluOp, OpKind, Region, Value};
use crate::pass::{AnalysisManager, Pass, PassResult};
use crate::spans::SpanTable;
use crate::{Func, Ty};
use std::collections::HashMap;

/// Deduplicates pure ops (`const`/`bin`/`select`/`cast`) within each
/// region's scope.
///
/// Availability is *scoped*: the available-expression map is cloned when
/// descending into a nested region, so an expression computed inside one
/// `if` arm is never reused in the sibling arm (its value would not be in
/// scope there), while expressions from enclosing regions remain reusable
/// inside. Commutative operands are order-normalized so `a+b` unifies with
/// `b+a`. Duplicate ops are deleted on the spot and their span entries
/// pruned; uses are remapped to the surviving value (declared types must
/// match).
///
/// Exception: availability does **not** flow into the sub-regions of
/// `while`/`foreach`/`replicate`/`fork` ops. The dataflow lowering pays
/// for every free use of those regions with *recirculated or broadcast
/// bandwidth* — a while loop threads it through the packed loop tuple on
/// every iteration, a foreach broadcasts it per element — so replacing a
/// region-local pure recompute with a reference to an enclosing value is
/// a pessimization there, not a win (measured as a double-digit executor
/// step regression on the while-heavy evaluation apps). `if` arms keep
/// inherited availability: their routing is filter-based and cheap.
pub struct Cse;

/// True when `kind`'s sub-regions recirculate or broadcast their free
/// uses under dataflow lowering (see the scoping exception above).
fn isolates_availability(kind: &OpKind) -> bool {
    matches!(kind, OpKind::While { .. })
}

impl Pass for Cse {
    fn name(&self) -> &str {
        "cse"
    }

    fn run(&self, f: &mut Func, _am: &mut AnalysisManager) -> PassResult {
        let tys: Vec<_> = (0..f.value_count())
            .map(|i| f.ty(Value(i as u32)))
            .collect();
        let mut remap = HashMap::new();
        let mut changed = false;
        let body = &mut f.body;
        let spans = &mut f.spans;
        cse_region(body, &HashMap::new(), &mut remap, spans, &tys, &mut changed);
        PassResult::of(changed)
    }
}

/// A normalized pure computation, used as the availability key.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(i64, Ty),
    Bin(AluOp, Value, Value),
    Select(Value, Value, Value),
    Cast(Value, Ty, bool),
}

fn key_of(kind: &OpKind) -> Option<Key> {
    Some(match *kind {
        OpKind::ConstI(v, ty) => Key::Const(v, ty),
        OpKind::Bin(alu, a, b) => {
            let (a, b) = if is_commutative(alu) && b < a {
                (b, a)
            } else {
                (a, b)
            };
            Key::Bin(alu, a, b)
        }
        OpKind::Select(c, t, e) => Key::Select(c, t, e),
        OpKind::Cast { v, to, signed } => Key::Cast(v, to, signed),
        _ => return None,
    })
}

fn cse_region(
    region: &mut Region,
    inherited: &HashMap<Key, Value>,
    remap: &mut HashMap<Value, Value>,
    spans: &mut SpanTable,
    tys: &[Ty],
    changed: &mut bool,
) {
    let mut avail = inherited.clone();
    let ops = std::mem::take(&mut region.ops);
    for mut op in ops {
        op.kind.map_operands(&mut |v| resolve(remap, v));
        if op.kind.is_pure() {
            let r = op.results[0];
            if let Some(key) = key_of(&op.kind) {
                if let Some(&prev) = avail.get(&key) {
                    if tys[prev.0 as usize] == tys[r.0 as usize] {
                        // Duplicate: drop the op, redirect uses, and keep
                        // the side-table free of the deleted value.
                        remap.insert(r, prev);
                        if let Some(span) = spans.remove(r) {
                            spans.set_if_absent(prev, span);
                        }
                        *changed = true;
                        continue;
                    }
                }
                avail.insert(key, r);
            }
        }
        let empty;
        let inherited_by_sub: &HashMap<Key, Value> = if isolates_availability(&op.kind) {
            empty = HashMap::new();
            &empty
        } else {
            &avail
        };
        for sub in op.kind.regions_mut() {
            cse_region(sub, inherited_by_sub, remap, spans, tys, changed);
        }
        region.ops.push(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::pass::PassManager;
    use crate::Module;
    use revet_diag::Span;

    fn run(f: Func) -> Module {
        let mut m = Module::default();
        m.funcs.push(f);
        let mut pm = PassManager::new();
        pm.add(Cse);
        pm.run(&mut m);
        m
    }

    #[test]
    fn dedups_commutative_and_consts() {
        let mut f = Func::new("main", &[Ty::I32, Ty::I32], vec![Ty::I32]);
        let (p, q) = (f.params[0], f.params[1]);
        let mut b = RegionBuilder::new();
        let c1 = b.const_i32(&mut f, 42);
        let c2 = b.const_i32(&mut f, 42);
        let s1 = b.bin(&mut f, AluOp::Add, p, q);
        let s2 = b.bin(&mut f, AluOp::Add, q, p); // commutes with s1
        let t = b.bin(&mut f, AluOp::Mul, s1, s2);
        let u = b.bin(&mut f, AluOp::Add, t, c1);
        let w = b.bin(&mut f, AluOp::Add, u, c2);
        b.emit0(OpKind::Return(vec![w]));
        f.body = b.build();
        f.spans.set(s2, Span::new(5, 9));
        let m = run(f);
        let f = m.func("main").unwrap();
        assert_eq!(f.count_ops(|k| matches!(k, OpKind::ConstI(..))), 1);
        // s2 deleted; t = s1 * s1.
        assert!(f
            .body
            .ops
            .iter()
            .any(|o| matches!(o.kind, OpKind::Bin(AluOp::Mul, a, b) if a == s1 && b == s1)));
        assert_eq!(f.spans.get(s2), None, "deleted value's span pruned");
        assert_eq!(f.spans.get(s1), Some(Span::new(5, 9)), "span transferred");
        assert!(f.dangling_spans().is_empty());
    }

    #[test]
    fn sibling_regions_do_not_share_availability() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let mut tb = RegionBuilder::new();
        let t1 = tb.bin(&mut f, AluOp::Mul, p, p);
        tb.emit0(OpKind::Yield(vec![t1]));
        let mut eb = RegionBuilder::new();
        let e1 = eb.bin(&mut f, AluOp::Mul, p, p); // same expr, other arm
        eb.emit0(OpKind::Yield(vec![e1]));
        let res = f.new_value(Ty::I32);
        b.push(
            OpKind::If {
                cond: p,
                then: tb.build(),
                else_: eb.build(),
            },
            vec![res],
        );
        b.emit0(OpKind::Return(vec![res]));
        f.body = b.build();
        let m = run(f);
        assert_eq!(
            m.func("main")
                .unwrap()
                .count_ops(|k| matches!(k, OpKind::Bin(..))),
            2,
            "an if-arm expression must not be reused in the sibling arm"
        );
        crate::verify_module(&m).unwrap();
    }

    #[test]
    fn enclosing_expression_reused_inside_region() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let outer = b.bin(&mut f, AluOp::Mul, p, p);
        let mut tb = RegionBuilder::new();
        let inner = tb.bin(&mut f, AluOp::Mul, p, p); // dup of outer
        let sum = tb.bin(&mut f, AluOp::Add, inner, outer);
        tb.emit0(OpKind::Yield(vec![sum]));
        let mut eb = RegionBuilder::new();
        eb.emit0(OpKind::Yield(vec![p]));
        let res = f.new_value(Ty::I32);
        b.push(
            OpKind::If {
                cond: p,
                then: tb.build(),
                else_: eb.build(),
            },
            vec![res],
        );
        b.emit0(OpKind::Return(vec![res]));
        f.body = b.build();
        let m = run(f);
        let f = m.func("main").unwrap();
        assert_eq!(f.count_ops(|k| matches!(k, OpKind::Bin(AluOp::Mul, ..))), 1);
        // The add now uses the outer value twice.
        assert_eq!(
            f.count_ops(
                |k| matches!(k, OpKind::Bin(AluOp::Add, a, b) if *a == outer && *b == outer)
            ),
            1
        );
        crate::verify_module(&m).unwrap();
    }
}
