//! Classical optimizations over MIR: constant folding, identity/select
//! simplification, local CSE, and dead-code elimination.
//!
//! All four are [`Pass`](crate::Pass)es designed to run as a group (fold →
//! simplify → cse → dce): folding and simplification leave bypassed ops in
//! place (remapping uses), and the trailing DCE sweep deletes them while
//! pruning their `SpanTable` entries.
//!
//! Semantics discipline: a pure op is only rewritten to a constant when the
//! replacement `ConstI` *materializes* (under the exact rules shared by the
//! interpreter and the dataflow lowering — I8/I16 constants are masked to
//! their storage width) to the very word the original op computes, and a
//! value is only replaced by another when their declared types match (the
//! subword packer keys on declared types). This keeps optimized programs
//! bit-identical to unoptimized ones.

mod cse;
mod dce;
mod fold;
mod simplify;
mod sink;

pub use cse::Cse;
pub use dce::Dce;
pub use fold::ConstFold;
pub use simplify::Simplify;
pub use sink::SinkConsts;

use crate::ops::{AluOp, Value};
use crate::types::Ty;
use revet_sltf::Word;
use std::collections::HashMap;

/// The word a `ConstI(v, ty)` op produces — mirrors both the interpreter
/// and the dataflow lowering (I8/I16 literals masked to storage width).
pub(crate) fn materialize(v: i64, ty: Ty) -> Word {
    match ty {
        Ty::I8 => Word((v as u8) as u32),
        Ty::I16 => Word((v as u16) as u32),
        _ => Word(v as u32),
    }
}

/// A literal `k` such that `materialize(k, ty)` equals `w`, if one exists.
/// (`None` when the computed word does not fit the declared storage width —
/// rewriting to a constant would change the program in that case.)
pub(crate) fn const_repr(w: Word, ty: Ty) -> Option<i64> {
    let k = w.as_u32() as i64;
    if materialize(k, ty) == w {
        Some(k)
    } else {
        None
    }
}

/// True for ALU ops where `op(a, b) == op(b, a)` for every pair of words —
/// CSE normalizes commutative operand order so `a+b` and `b+a` unify.
pub(crate) fn is_commutative(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add
            | AluOp::Mul
            | AluOp::And
            | AluOp::Or
            | AluOp::Xor
            | AluOp::Eq
            | AluOp::Ne
            | AluOp::MinS
            | AluOp::MinU
            | AluOp::MaxS
            | AluOp::MaxU
    )
}

/// Resolves a value through a replacement map, following chains.
pub(crate) fn resolve(remap: &HashMap<Value, Value>, mut v: Value) -> Value {
    while let Some(&r) = remap.get(&v) {
        v = r;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_masks_subwords() {
        assert_eq!(materialize(0x1FF, Ty::I8), Word(0xFF));
        assert_eq!(materialize(-1, Ty::I16), Word(0xFFFF));
        assert_eq!(materialize(-1, Ty::I32), Word(u32::MAX));
    }

    #[test]
    fn const_repr_round_trips() {
        assert_eq!(const_repr(Word(200), Ty::I8), Some(200));
        assert_eq!(
            const_repr(Word(300), Ty::I8),
            None,
            "does not fit i8 storage"
        );
        assert_eq!(const_repr(Word(u32::MAX), Ty::I32), Some(u32::MAX as i64));
    }

    #[test]
    fn remap_chains_resolve() {
        let mut m = HashMap::new();
        m.insert(Value(3), Value(2));
        m.insert(Value(2), Value(1));
        assert_eq!(resolve(&m, Value(3)), Value(1));
        assert_eq!(resolve(&m, Value(5)), Value(5));
    }
}
