//! Dead-code elimination.

use crate::ops::Region;
use crate::pass::{AnalysisManager, Pass, PassResult};
use crate::spans::SpanTable;
use crate::Func;

/// Deletes pure ops none of whose results are live, pruning the span-table
/// entries of every deleted value.
///
/// Liveness comes from the [`AnalysisManager`] (computed once, reused if
/// already cached): a value is live when an undeletable op — a terminator,
/// a memory op, or any region-bearing op — transitively depends on it.
/// Because liveness is transitive, one sweep removes entire dead chains.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &str {
        "dce"
    }

    fn run(&self, f: &mut Func, am: &mut AnalysisManager) -> PassResult {
        let live = am.liveness(f).clone();
        let mut changed = false;
        let body = &mut f.body;
        let spans = &mut f.spans;
        sweep(body, &live, spans, &mut changed);
        PassResult::of(changed)
    }
}

fn sweep(
    region: &mut Region,
    live: &crate::analysis::Liveness,
    spans: &mut SpanTable,
    changed: &mut bool,
) {
    region.ops.retain_mut(|op| {
        for sub in op.kind.regions_mut() {
            sweep(sub, live, spans, changed);
        }
        let keep = !op.kind.is_pure() || op.results.iter().any(|v| live.is_live(*v));
        if !keep {
            for v in &op.results {
                spans.remove(*v);
            }
            *changed = true;
        }
        keep
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::ops::{AluOp, OpKind};
    use crate::pass::PassManager;
    use crate::{Module, Ty};
    use revet_diag::Span;

    #[test]
    fn removes_dead_chain_and_prunes_spans() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let d1 = b.bin(&mut f, AluOp::Add, p, p);
        let d2 = b.bin(&mut f, AluOp::Mul, d1, d1); // dead chain d1→d2
        let keep = b.bin(&mut f, AluOp::Add, p, p);
        b.emit0(OpKind::Return(vec![keep]));
        f.body = b.build();
        f.spans.set(d1, Span::new(0, 1));
        f.spans.set(d2, Span::new(2, 3));
        f.spans.set(keep, Span::new(4, 5));
        let mut m = Module::default();
        m.funcs.push(f);
        let mut pm = PassManager::new();
        pm.add(Dce);
        let report = pm.run(&mut m);
        assert!(report.passes[0].changed);
        let f = m.func("main").unwrap();
        assert_eq!(f.body.ops.len(), 2, "dead chain gone, keep + return stay");
        assert_eq!(f.spans.get(d1), None);
        assert_eq!(f.spans.get(d2), None);
        assert_eq!(f.spans.get(keep), Some(Span::new(4, 5)));
        assert!(f.dangling_spans().is_empty());
    }

    #[test]
    fn memory_ops_survive_even_unused() {
        let mut m = Module::default();
        let d = m.add_dram("buf", 4);
        let mut f = Func::new("main", &[Ty::I32], vec![]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let r = b.emit(&mut f, OpKind::DramRead { dram: d, idx: p }, Ty::I32);
        let _ = r; // unused result, but the read must stay
        b.emit0(OpKind::Return(vec![]));
        f.body = b.build();
        m.funcs.push(f);
        let mut pm = PassManager::new();
        pm.add(Dce);
        let report = pm.run(&mut m);
        assert!(!report.passes[0].changed);
        assert_eq!(m.func("main").unwrap().body.ops.len(), 2);
    }

    #[test]
    fn dead_ops_inside_loop_bodies_are_swept() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let lo = b.const_i32(&mut f, 0);
        let step = b.const_i32(&mut f, 1);
        let idx = f.new_value(Ty::I32);
        let mut body = RegionBuilder::with_args(vec![idx]);
        let dead = body.bin(&mut f, AluOp::Mul, idx, idx);
        let _ = dead;
        let kept = body.bin(&mut f, AluOp::Add, idx, idx);
        body.emit0(OpKind::Yield(vec![kept]));
        let sum = f.new_value(Ty::I32);
        b.push(
            OpKind::Foreach {
                lo,
                hi: p,
                step,
                body: body.build(),
                reduce: vec![AluOp::Add],
                flags: Default::default(),
            },
            vec![sum],
        );
        b.emit0(OpKind::Return(vec![sum]));
        f.body = b.build();
        let mut m = Module::default();
        m.funcs.push(f);
        let mut pm = PassManager::new();
        pm.add(Dce);
        pm.run(&mut m);
        let f = m.func("main").unwrap();
        assert_eq!(f.count_ops(|k| matches!(k, OpKind::Bin(AluOp::Mul, ..))), 0);
        assert_eq!(f.count_ops(|k| matches!(k, OpKind::Bin(AluOp::Add, ..))), 1);
        crate::verify_module(&m).unwrap();
    }
}
