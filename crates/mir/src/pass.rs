//! The generic pass framework: `Pass`/`ModulePass` traits, cached
//! analyses, an ordered [`PassManager`], and the [`PassReport`] it emits.
//!
//! Function passes ([`Pass`]) rewrite one [`Func`] at a time and may query
//! cached analyses through the [`AnalysisManager`]; module passes
//! ([`ModulePass`]) may additionally add module-level declarations (SRAMs,
//! allocator queues) — the lowering passes need this. Every pass reports
//! whether it changed the IR; the managers use that to invalidate stale
//! analyses, and the [`PassManager`] turns it into per-pass statistics.
//!
//! Under `debug_assertions` the manager re-verifies the module and checks
//! `SpanTable` integrity (no entry may point at a value with no remaining
//! definition) after every pass, naming the offending pass on failure.

use crate::analysis::{DefUse, Liveness, OpStats};
use crate::func::{Func, Module};
#[cfg(debug_assertions)]
use crate::verify::verify_module;
use std::time::{Duration, Instant};

/// What a pass did to the IR it ran on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PassResult {
    /// The pass rewrote something; cached analyses are stale.
    Changed,
    /// The IR is untouched; cached analyses remain valid.
    Unchanged,
}

impl PassResult {
    /// `Changed` when the flag is set.
    pub fn of(changed: bool) -> PassResult {
        if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        }
    }

    /// True for [`PassResult::Changed`].
    pub fn changed(self) -> bool {
        self == PassResult::Changed
    }

    /// Folds another result in: changed if either changed.
    pub fn merge(self, other: PassResult) -> PassResult {
        PassResult::of(self.changed() || other.changed())
    }
}

/// Cache of per-function analyses, computed on first request and reused
/// until the owning manager invalidates them.
#[derive(Debug, Default)]
pub struct AnalysisManager {
    def_use: Option<DefUse>,
    liveness: Option<Liveness>,
    op_stats: Option<OpStats>,
}

impl AnalysisManager {
    /// An empty cache.
    pub fn new() -> AnalysisManager {
        AnalysisManager::default()
    }

    /// Def-use chains for `f` (cached).
    pub fn def_use(&mut self, f: &Func) -> &DefUse {
        self.def_use.get_or_insert_with(|| DefUse::compute(f))
    }

    /// Liveness for `f` (cached).
    pub fn liveness(&mut self, f: &Func) -> &Liveness {
        self.liveness.get_or_insert_with(|| Liveness::compute(f))
    }

    /// Op population counts for `f` (cached).
    pub fn op_stats(&mut self, f: &Func) -> &OpStats {
        self.op_stats.get_or_insert_with(|| OpStats::compute(f))
    }

    /// Drops every cached analysis — called after a pass reports
    /// [`PassResult::Changed`].
    pub fn invalidate(&mut self) {
        *self = AnalysisManager::default();
    }

    /// True when any analysis is currently cached (test/introspection aid).
    pub fn has_cached(&self) -> bool {
        self.def_use.is_some() || self.liveness.is_some() || self.op_stats.is_some()
    }
}

/// Per-function analysis caches for a whole module, indexed by the
/// function's position in [`Module::funcs`].
#[derive(Debug, Default)]
pub struct ModuleAnalysisManager {
    per_func: Vec<AnalysisManager>,
}

impl ModuleAnalysisManager {
    /// An empty cache set.
    pub fn new() -> ModuleAnalysisManager {
        ModuleAnalysisManager::default()
    }

    /// The analysis cache for the `idx`-th function (growing on demand).
    pub fn for_func(&mut self, idx: usize) -> &mut AnalysisManager {
        if self.per_func.len() <= idx {
            self.per_func.resize_with(idx + 1, AnalysisManager::new);
        }
        &mut self.per_func[idx]
    }

    /// Invalidates every function's cache — called after a module pass
    /// reports [`PassResult::Changed`].
    pub fn invalidate_all(&mut self) {
        self.per_func.clear();
    }
}

/// A transformation over a single function.
pub trait Pass {
    /// Stable, kebab/snake-case pass name (used by `--emit mir-after=` and
    /// the pass report).
    fn name(&self) -> &str;
    /// Rewrites `f`, reporting whether anything changed.
    fn run(&self, f: &mut Func, am: &mut AnalysisManager) -> PassResult;
}

/// A transformation over a whole module (needed by passes that add
/// module-level declarations or rewrite across functions).
pub trait ModulePass {
    /// Stable pass name.
    fn name(&self) -> &str;
    /// Rewrites `m`, reporting whether anything changed.
    fn run_module(&self, m: &mut Module, am: &mut ModuleAnalysisManager) -> PassResult;
}

enum Entry {
    Func(Box<dyn Pass>),
    Module(Box<dyn ModulePass>),
}

impl Entry {
    fn name(&self) -> &str {
        match self {
            Entry::Func(p) => p.name(),
            Entry::Module(p) => p.name(),
        }
    }
}

/// Statistics for one pass execution.
#[derive(Clone, Debug)]
pub struct PassStat {
    /// Pass name.
    pub name: String,
    /// Wall-clock time spent in the pass.
    pub wall: Duration,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// Module-wide op count before the pass.
    pub ops_before: usize,
    /// Module-wide op count after the pass.
    pub ops_after: usize,
}

/// The per-pass record a [`PassManager`] run produces: timing, changed
/// flags, and op-count deltas, in pipeline order.
#[derive(Clone, Debug, Default)]
pub struct PassReport {
    /// One entry per executed pass, in order.
    pub passes: Vec<PassStat>,
}

impl PassReport {
    /// Module op count before the first pass ran (0 for an empty pipeline).
    pub fn ops_before(&self) -> usize {
        self.passes.first().map_or(0, |p| p.ops_before)
    }

    /// Module op count after the last pass ran (0 for an empty pipeline).
    pub fn ops_after(&self) -> usize {
        self.passes.last().map_or(0, |p| p.ops_after)
    }

    /// Total wall-clock time across all passes.
    pub fn total_wall(&self) -> Duration {
        self.passes.iter().map(|p| p.wall).sum()
    }

    /// A fixed-width text table: per-pass wall time, changed flag, and op
    /// counts before/after (the `revetc --emit report` payload).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>10} {:>8} {:>8} {:>8}\n",
            "pass", "wall_us", "changed", "ops_in", "ops_out"
        ));
        for p in &self.passes {
            out.push_str(&format!(
                "{:<24} {:>10} {:>8} {:>8} {:>8}\n",
                p.name,
                p.wall.as_micros(),
                if p.changed { "yes" } else { "-" },
                p.ops_before,
                p.ops_after
            ));
        }
        out.push_str(&format!(
            "{:<24} {:>10} {:>8} {:>8} {:>8}\n",
            "total",
            self.total_wall().as_micros(),
            "",
            self.ops_before(),
            self.ops_after()
        ));
        out
    }
}

/// An ordered pipeline of function and module passes.
///
/// `run` executes each pass in order over the module, invalidating cached
/// analyses when a pass reports changes, and returns a [`PassReport`].
#[derive(Default)]
pub struct PassManager {
    entries: Vec<Entry>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Appends a function pass.
    pub fn add(&mut self, p: impl Pass + 'static) -> &mut PassManager {
        self.entries.push(Entry::Func(Box::new(p)));
        self
    }

    /// Appends a module pass.
    pub fn add_module(&mut self, p: impl ModulePass + 'static) -> &mut PassManager {
        self.entries.push(Entry::Module(Box::new(p)));
        self
    }

    /// The pipeline's pass names, in execution order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name()).collect()
    }

    /// Number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the pipeline holds no passes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs the pipeline over `m`.
    pub fn run(&self, m: &mut Module) -> PassReport {
        self.run_observed(m, &mut |_, _| {})
    }

    /// Runs the pipeline, invoking `observer(pass_name, module)` after each
    /// pass completes — this is how `--emit mir-after=<pass>` snapshots the
    /// IR without the manager knowing about printing.
    pub fn run_observed(
        &self,
        m: &mut Module,
        observer: &mut dyn FnMut(&str, &Module),
    ) -> PassReport {
        let mut report = PassReport::default();
        let mut mam = ModuleAnalysisManager::new();
        // Only hold passes to the integrity contract when the input module
        // already satisfied it — an invalid input must flow through to the
        // caller's own verification for graceful, diagnostic-carrying
        // reporting, not a panic blamed on the first pass.
        #[cfg(debug_assertions)]
        let input_clean =
            verify_module(m).is_ok() && m.funcs.iter().all(|f| f.dangling_spans().is_empty());
        for entry in &self.entries {
            let ops_before = m.op_count();
            let start = Instant::now();
            let result = match entry {
                Entry::Func(p) => {
                    let mut merged = PassResult::Unchanged;
                    for (i, f) in m.funcs.iter_mut().enumerate() {
                        let am = mam.for_func(i);
                        let r = p.run(f, am);
                        if r.changed() {
                            am.invalidate();
                        }
                        merged = merged.merge(r);
                    }
                    merged
                }
                Entry::Module(p) => {
                    let r = p.run_module(m, &mut mam);
                    if r.changed() {
                        mam.invalidate_all();
                    }
                    r
                }
            };
            let wall = start.elapsed();
            report.passes.push(PassStat {
                name: entry.name().to_string(),
                wall,
                changed: result.changed(),
                ops_before,
                ops_after: m.op_count(),
            });
            #[cfg(debug_assertions)]
            if input_clean {
                Self::check_integrity(entry.name(), m);
            }
            observer(entry.name(), m);
        }
        report
    }

    /// Debug-build invariant check run after every pass: the module must
    /// still verify, and no function's span table may reference a value
    /// whose definition the pass deleted.
    #[cfg(debug_assertions)]
    fn check_integrity(pass: &str, m: &Module) {
        if let Err(e) = verify_module(m) {
            panic!("pass `{pass}` broke module invariants: {e}");
        }
        for f in &m.funcs {
            let dangling = f.dangling_spans();
            assert!(
                dangling.is_empty(),
                "pass `{pass}` left dangling span entries in `{}`: {dangling:?}",
                f.name
            );
        }
    }

    /// Release-build no-op counterpart (kept callable so tests can exercise
    /// the checks explicitly via `verify_module` + `dangling_spans`).
    #[cfg(not(debug_assertions))]
    #[allow(dead_code)]
    fn check_integrity(_pass: &str, _m: &Module) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::ops::{AluOp, OpKind, Value};
    use crate::types::Ty;
    use std::cell::Cell;
    use std::rc::Rc;

    fn module() -> Module {
        let mut m = Module::default();
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let one = b.const_i32(&mut f, 1);
        let s = b.bin(&mut f, AluOp::Add, p, one);
        b.emit0(OpKind::Return(vec![s]));
        f.body = b.build();
        m.funcs.push(f);
        m
    }

    struct Nop;
    impl Pass for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn run(&self, _f: &mut Func, _am: &mut AnalysisManager) -> PassResult {
            PassResult::Unchanged
        }
    }

    /// Appends a dead constant (a change that keeps the module valid).
    struct AddConst;
    impl Pass for AddConst {
        fn name(&self) -> &str {
            "add_const"
        }
        fn run(&self, f: &mut Func, _am: &mut AnalysisManager) -> PassResult {
            let v = f.new_value(Ty::I32);
            let ret = f.body.ops.pop().expect("terminator");
            f.body.ops.push(Op {
                kind: OpKind::ConstI(7, Ty::I32),
                results: vec![v],
            });
            f.body.ops.push(ret);
            PassResult::Changed
        }
    }
    use crate::ops::Op;

    #[test]
    fn report_tracks_ops_and_change_flags() {
        let mut m = module();
        let mut pm = PassManager::new();
        pm.add(Nop).add(AddConst).add(Nop);
        assert_eq!(pm.names(), vec!["nop", "add_const", "nop"]);
        let report = pm.run(&mut m);
        assert_eq!(report.passes.len(), 3);
        assert!(!report.passes[0].changed);
        assert!(report.passes[1].changed);
        assert_eq!(report.passes[1].ops_before, 3);
        assert_eq!(report.passes[1].ops_after, 4);
        assert_eq!(report.ops_before(), 3);
        assert_eq!(report.ops_after(), 4);
        let s = report.summary();
        assert!(s.contains("add_const"));
        assert!(s.contains("total"));
    }

    #[test]
    fn observer_sees_each_pass_in_order() {
        let mut m = module();
        let mut pm = PassManager::new();
        pm.add(Nop).add(AddConst);
        let mut seen = Vec::new();
        pm.run_observed(&mut m, &mut |name, module| {
            seen.push((name.to_string(), module.op_count()));
        });
        assert_eq!(
            seen,
            vec![("nop".to_string(), 3), ("add_const".to_string(), 4)]
        );
    }

    #[test]
    fn analysis_cache_invalidation() {
        // A pass that checks whether the cache was warm when it ran.
        struct Probe {
            warm: Rc<Cell<bool>>,
            mutate: bool,
        }
        impl Pass for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn run(&self, f: &mut Func, am: &mut AnalysisManager) -> PassResult {
                self.warm.set(am.has_cached());
                am.def_use(f);
                PassResult::of(self.mutate)
            }
        }
        let warm1 = Rc::new(Cell::new(false));
        let warm2 = Rc::new(Cell::new(false));
        let warm3 = Rc::new(Cell::new(false));

        // unchanged → cache survives; changed → cache dropped.
        let mut pm = PassManager::new();
        pm.add(Probe {
            warm: warm1.clone(),
            mutate: false,
        });
        pm.add(Probe {
            warm: warm2.clone(),
            mutate: true,
        });
        pm.add(Probe {
            warm: warm3.clone(),
            mutate: false,
        });
        // The "mutate" probe lies about changing the IR, which is harmless:
        // over-invalidation is always sound.
        pm.run(&mut module());
        assert!(!warm1.get(), "first pass starts cold");
        assert!(warm2.get(), "unchanged pass leaves cache warm");
        assert!(!warm3.get(), "changed pass invalidates the cache");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "dangling span entries")]
    fn dangling_span_detected() {
        struct LeaveDangling;
        impl Pass for LeaveDangling {
            fn name(&self) -> &str {
                "leave_dangling"
            }
            fn run(&self, f: &mut Func, _am: &mut AnalysisManager) -> PassResult {
                // Record a span for a value, then delete its defining op
                // without pruning the table.
                let v = f.body.ops[0].results[0];
                f.spans.set(v, revet_diag::Span::new(0, 1));
                let op = f.body.ops.remove(0);
                // Keep the module verifiable: the deleted const's result is
                // used by the add, so re-define it as a fresh const of a
                // *different* value id would break SSA — instead re-insert
                // an op defining the same value but drop the span's value
                // from nothing. Simplest valid mutation: re-add the op and
                // instead record a span for a value that never existed.
                f.body.ops.insert(0, op);
                let ghost = Value(999);
                f.spans.set(ghost, revet_diag::Span::new(2, 3));
                PassResult::Changed
            }
        }
        let mut pm = PassManager::new();
        pm.add(LeaveDangling);
        pm.run(&mut module());
    }
}
