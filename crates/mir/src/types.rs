//! MIR types and module-level declarations.
//!
//! The Revet machine computes on 32-bit lanes; `I8`/`I16` are *storage*
//! widths that matter to the memory lowering and to the sub-word packing
//! optimization (§V-B d). Signedness lives in the operations (the ALU has
//! signed/unsigned variants), mirroring LLVM/MLIR.

use core::fmt;

/// A value type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// 8-bit storage (computed on a 32-bit lane).
    I8,
    /// 16-bit storage.
    I16,
    /// Full 32-bit word.
    I32,
    /// A data-free ordering token.
    Void,
    /// An opaque handle to a view/iterator/SRAM object (front-end only;
    /// eliminated by high-level lowering).
    Handle,
}

impl Ty {
    /// Storage width in bytes (handles and void have none).
    pub fn bytes(self) -> Option<u32> {
        match self {
            Ty::I8 => Some(1),
            Ty::I16 => Some(2),
            Ty::I32 => Some(4),
            Ty::Void | Ty::Handle => None,
        }
    }

    /// True for the integer storage types.
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I8 | Ty::I16 | Ty::I32)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::Void => "void",
            Ty::Handle => "handle",
        };
        f.write_str(s)
    }
}

/// Reference to a module-level DRAM symbol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DramRef(pub u32);

/// A DRAM symbol declaration (`dram<u8> input;`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DramDecl {
    /// Symbol name.
    pub name: String,
    /// Element storage width in bytes (1, 2 or 4).
    pub elem_bytes: u32,
}

/// Where each DRAM symbol lives in the flat simulated DRAM.
///
/// Assigned by the application harness before execution; the compiler only
/// deals in symbols.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DramLayout {
    /// Base byte address per [`DramRef`] index.
    pub base: Vec<u32>,
}

impl DramLayout {
    /// Byte address of element `idx` of symbol `d` with the given element
    /// width.
    pub fn addr(&self, d: DramRef, elem_bytes: u32, idx: u32) -> u32 {
        self.base[d.0 as usize].wrapping_add(idx.wrapping_mul(elem_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_bytes() {
        assert_eq!(Ty::I8.bytes(), Some(1));
        assert_eq!(Ty::I16.bytes(), Some(2));
        assert_eq!(Ty::I32.bytes(), Some(4));
        assert_eq!(Ty::Void.bytes(), None);
        assert!(Ty::I8.is_int() && !Ty::Handle.is_int());
    }

    #[test]
    fn layout_addresses() {
        let l = DramLayout {
            base: vec![0, 1024],
        };
        assert_eq!(l.addr(DramRef(1), 4, 3), 1024 + 12);
    }

    #[test]
    fn display() {
        assert_eq!(Ty::I16.to_string(), "i16");
    }
}
