//! Per-op source spans, kept as a side-table beside each function.
//!
//! Ops themselves stay span-free (passes clone and rebuild them freely);
//! instead the front end records, per SSA value, the span of the surface
//! statement that produced the op defining it. Because passes reuse value
//! ids when they rewrite regions, the attribution survives optimization —
//! values synthesized by passes simply have no entry.

use crate::ops::{Op, Value};
use revet_diag::Span;
use std::collections::HashMap;

/// `Value → Span` side-table: where in the source each SSA value's
/// defining op came from.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SpanTable {
    map: HashMap<Value, Span>,
}

impl SpanTable {
    /// An empty table.
    pub fn new() -> SpanTable {
        SpanTable::default()
    }

    /// Records (or overwrites) the span for a value.
    pub fn set(&mut self, v: Value, span: Span) {
        self.map.insert(v, span);
    }

    /// Records the span for a value unless one is already present —
    /// outer lowering layers use this to supply coarser fallbacks without
    /// clobbering finer inner attributions.
    pub fn set_if_absent(&mut self, v: Value, span: Span) {
        self.map.entry(v).or_insert(span);
    }

    /// The span recorded for a value, if any.
    pub fn get(&self, v: Value) -> Option<Span> {
        self.map.get(&v).copied()
    }

    /// Best-effort span for an op: its first spanned result, else its
    /// first spanned operand (useful for result-less ops like stores).
    pub fn op_span(&self, op: &Op) -> Option<Span> {
        op.results
            .iter()
            .copied()
            .chain(op.kind.operands())
            .find_map(|v| self.get(v))
    }

    /// Removes the span recorded for a value (if any), returning it.
    /// Passes that delete a value's defining op call this so the table
    /// never points at values with no definition.
    pub fn remove(&mut self, v: Value) -> Option<Span> {
        self.map.remove(&v)
    }

    /// Keeps only entries whose value satisfies the predicate — the bulk
    /// form of [`remove`](Self::remove) used by sweeps like DCE.
    pub fn retain(&mut self, mut keep: impl FnMut(Value) -> bool) {
        self.map.retain(|v, _| keep(*v));
    }

    /// Iterates over the attributed values (arbitrary order).
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.map.keys().copied()
    }

    /// Number of attributed values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no value is attributed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AluOp, OpKind};

    #[test]
    fn set_get_and_fallback() {
        let mut t = SpanTable::new();
        t.set(Value(1), Span::new(10, 14));
        t.set_if_absent(Value(1), Span::new(0, 100));
        assert_eq!(t.get(Value(1)), Some(Span::new(10, 14)));
        t.set_if_absent(Value(2), Span::new(20, 21));
        assert_eq!(t.get(Value(2)), Some(Span::new(20, 21)));
        assert_eq!(t.get(Value(3)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_and_retain() {
        let mut t = SpanTable::new();
        t.set(Value(1), Span::new(0, 1));
        t.set(Value(2), Span::new(2, 3));
        t.set(Value(3), Span::new(4, 5));
        assert_eq!(t.remove(Value(2)), Some(Span::new(2, 3)));
        assert_eq!(t.remove(Value(2)), None);
        t.retain(|v| v != Value(3));
        assert_eq!(t.len(), 1);
        assert_eq!(t.values().collect::<Vec<_>>(), vec![Value(1)]);
    }

    #[test]
    fn op_span_prefers_results_then_operands() {
        let mut t = SpanTable::new();
        t.set(Value(5), Span::new(1, 2));
        t.set(Value(9), Span::new(7, 9));
        // Result attributed: wins.
        let op = Op {
            kind: OpKind::Bin(AluOp::Add, Value(5), Value(6)),
            results: vec![Value(9)],
        };
        assert_eq!(t.op_span(&op), Some(Span::new(7, 9)));
        // Result-less store: falls back to the spanned operand.
        let store = Op {
            kind: OpKind::Bin(AluOp::Add, Value(5), Value(6)),
            results: vec![],
        };
        assert_eq!(t.op_span(&store), Some(Span::new(1, 2)));
        let cold = Op {
            kind: OpKind::Bin(AluOp::Add, Value(6), Value(7)),
            results: vec![],
        };
        assert_eq!(t.op_span(&cold), None);
    }
}
