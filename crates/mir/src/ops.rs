//! MIR operations: arithmetic, physical memory, structured control flow
//! (SCF), and the high-level Revet dialect (views & iterators).
//!
//! The op set mirrors the compiler pipeline of Fig. 8: the front end emits a
//! mixture of SCF and *high-level Revet* ops; high-level lowering rewrites
//! views/iterators into physical SRAM/DRAM accesses; optimization passes
//! rewrite SCF in place; and the CFG conversion consumes only physical ops.

use crate::types::{DramRef, Ty};
pub use revet_machine::instr::AluOp;
use revet_machine::{AllocId, SramId};

/// An SSA value id, scoped to one function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Value(pub u32);

/// A region: block arguments plus an op list. Regions may reference values
/// defined in enclosing regions (they are not isolated from above).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Region {
    /// Values bound on entry (loop variables, indices, …).
    pub args: Vec<Value>,
    /// Ops in program order; the last op must be a terminator where the
    /// containing construct requires one.
    pub ops: Vec<Op>,
}

impl Region {
    /// A region with the given arguments and ops.
    pub fn new(args: Vec<Value>, ops: Vec<Op>) -> Self {
        Region { args, ops }
    }
}

/// Kinds of memory views (Table I): small auto-fetched/stored tiles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ViewKind {
    /// `ReadView<size>(dram, base)` — auto-fetched, read-only.
    Read,
    /// `WriteView<size>(dram, base)` — auto-stored on flush.
    Write,
    /// `ModifyView<size>(dram, base)` — fetched and stored.
    Modify,
    /// Raw `SRAM<size>` scratchpad (array-decay capable).
    Sram,
}

/// Kinds of iterators (Table I): linear DRAM access with small-tile staging.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ItKind {
    /// `ReadIt<tile>(dram, seek)` — linear read.
    Read,
    /// `PeekReadIt<tile>(dram, seek)` — linear read with look-ahead.
    PeekRead,
    /// `WriteIt<tile>(dram, seek)` — linear write (flushed automatically).
    Write,
    /// `ManualWriteIt<tile>(dram, seek)` — linear write with caller-driven
    /// last-iteration flush elision (§V-A a).
    ManualWrite,
}

/// An operation: kind plus result values.
#[derive(Clone, PartialEq, Debug)]
pub struct Op {
    /// What the op does.
    pub kind: OpKind,
    /// SSA results (types in the function's value table).
    pub results: Vec<Value>,
}

/// Foreach attributes (pragmas).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ForeachFlags {
    /// `pragma(eliminate_hierarchy)`: rewrite to a fork + shared counter
    /// (Fig. 9) so stragglers of consecutive parents interleave.
    pub eliminate_hierarchy: bool,
}

/// The operation kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum OpKind {
    // ---- arithmetic ----
    /// An integer constant of the given type.
    ConstI(i64, Ty),
    /// Binary ALU op (includes comparisons; results are 0/1 i32).
    Bin(AluOp, Value, Value),
    /// `cond ? t : f`.
    Select(Value, Value, Value),
    /// Width cast (truncate / zero-extend / sign-extend).
    Cast {
        /// Input value.
        v: Value,
        /// Target type.
        to: Ty,
        /// Sign-extend when widening.
        signed: bool,
    },

    // ---- physical memory (post high-level lowering) ----
    /// `result = sram[addr]` (word granularity).
    SramRead {
        /// Region.
        sram: SramId,
        /// Word address.
        addr: Value,
    },
    /// `sram[addr] = val`.
    SramWrite {
        /// Region.
        sram: SramId,
        /// Word address.
        addr: Value,
        /// Stored value.
        val: Value,
    },
    /// Atomic decrement-and-fetch (returns the new value).
    SramDecFetch {
        /// Region.
        sram: SramId,
        /// Word address.
        addr: Value,
    },
    /// DRAM element read from a symbol: `result = dram[idx]` with the
    /// symbol's element width (byte-addressed underneath).
    DramRead {
        /// Symbol.
        dram: DramRef,
        /// Element index.
        idx: Value,
    },
    /// DRAM element write.
    DramWrite {
        /// Symbol.
        dram: DramRef,
        /// Element index.
        idx: Value,
        /// Stored value.
        val: Value,
    },
    /// Pops a buffer pointer from an allocator queue (blocking).
    AllocPop {
        /// Queue.
        alloc: AllocId,
    },
    /// Returns a buffer pointer to an allocator queue.
    AllocPush {
        /// Queue.
        alloc: AllocId,
        /// Pointer to free.
        ptr: Value,
    },
    /// Bulk DRAM→SRAM transfer (`len` elements from `dram[dram_base..]` into
    /// `sram[sram_base..]`); lowered to a `foreach` of element reads (§V-A).
    BulkLoad {
        /// Source symbol.
        dram: DramRef,
        /// First element index.
        dram_base: Value,
        /// Destination region.
        sram: SramId,
        /// Destination word offset.
        sram_base: Value,
        /// Element count.
        len: Value,
    },
    /// Bulk SRAM→DRAM transfer.
    BulkStore {
        /// Destination symbol.
        dram: DramRef,
        /// First element index.
        dram_base: Value,
        /// Source region.
        sram: SramId,
        /// Source word offset.
        sram_base: Value,
        /// Element count.
        len: Value,
    },

    // ---- structured control flow ----
    /// `if cond { then } else { else_ }`; both regions end in `Yield` with
    /// matching arities; results carry the yielded values.
    If {
        /// Condition (non-zero = then).
        cond: Value,
        /// Taken region.
        then: Region,
        /// Fallback region (may be empty-yield).
        else_: Region,
    },
    /// MLIR-style while: `before` evaluates the condition from the carried
    /// values (terminator [`OpKind::Condition`]); `after` is the loop body
    /// (terminator [`OpKind::Yield`] with the next carried values). Results
    /// are the condition's forwarded values at exit.
    While {
        /// Initial carried values.
        inits: Vec<Value>,
        /// Condition region (args = carried values).
        before: Region,
        /// Body region (args = forwarded values).
        after: Region,
    },
    /// Explicitly parallel `foreach (lo..hi by step)`; body args =
    /// `[index]`; body terminator yields reduction operands.
    Foreach {
        /// Lower bound.
        lo: Value,
        /// Exclusive upper bound.
        hi: Value,
        /// Step.
        step: Value,
        /// Per-thread body.
        body: Region,
        /// Associative reduction ops applied to yielded values (one per
        /// result).
        reduce: Vec<AluOp>,
        /// Pragmas.
        flags: ForeachFlags,
    },
    /// `replicate (ways) { … }`: semantically identity over threads;
    /// physically duplicated into `ways` parallel regions (§IV-A, §V-C d).
    Replicate {
        /// Physical duplication factor.
        ways: u32,
        /// Body (terminator yields passthrough values).
        body: Region,
    },
    /// `fork (count) { i => … }`: spawns `count` hierarchy-less threads; at
    /// most one may reach the body's `Yield` (the continuation thread);
    /// others must `Exit` (§IV-A a, Fig. 9).
    Fork {
        /// Spawn count.
        count: Value,
        /// Per-spawn body, arg = spawn index.
        body: Region,
    },
    /// Terminates the current thread without yielding (§IV-A a).
    Exit,
    /// Region terminator: yields values to the enclosing construct.
    Yield(Vec<Value>),
    /// `before`-region terminator of [`OpKind::While`].
    Condition {
        /// Keep looping while non-zero.
        cond: Value,
        /// Values forwarded to the body (and out of the loop on exit).
        fwd: Vec<Value>,
    },
    /// Function terminator.
    Return(Vec<Value>),
    /// Runs `inner` only when `pred`'s truthiness equals `expect`; otherwise
    /// results are zero and side effects are suppressed. Produced by
    /// if-to-select conversion for memory operations (§V-B c).
    Predicated {
        /// The predicate value.
        pred: Value,
        /// Required truthiness.
        expect: bool,
        /// The guarded operation (must be region-free).
        inner: Box<OpKind>,
    },

    // ---- high-level Revet dialect (front-end only) ----
    /// Creates a view (Table I); result is a handle.
    ViewNew {
        /// Access pattern.
        kind: ViewKind,
        /// Backing symbol (None for raw SRAM).
        dram: Option<DramRef>,
        /// Base element index (tile `base*size`; None for raw SRAM).
        base: Option<Value>,
        /// Tile size in elements.
        size: u32,
    },
    /// `view[idx]` read.
    ViewRead {
        /// The view handle.
        view: Value,
        /// Element index within the tile.
        idx: Value,
    },
    /// `view[idx] = val` write.
    ViewWrite {
        /// The view handle.
        view: Value,
        /// Element index within the tile.
        idx: Value,
        /// Stored value.
        val: Value,
    },
    /// Creates an iterator (Table I); result is a handle.
    ItNew {
        /// Access pattern.
        kind: ItKind,
        /// Backing symbol.
        dram: DramRef,
        /// Starting element index.
        seek: Value,
        /// Tile (staging buffer) size in elements.
        tile: u32,
    },
    /// `*it` (reads; `Read`/`PeekRead` kinds only).
    ItDeref {
        /// The iterator handle.
        it: Value,
    },
    /// `it.peek(ahead)` look-ahead read (`PeekRead` only; `ahead < tile`).
    ItPeek {
        /// The iterator handle.
        it: Value,
        /// Elements ahead of the cursor.
        ahead: Value,
    },
    /// `*it = val` (write iterators).
    ItWrite {
        /// The iterator handle.
        it: Value,
        /// Stored value.
        val: Value,
    },
    /// `it++`; for `ManualWrite`, `last` non-zero elides the deallocation
    /// flush (§V-A a).
    ItInc {
        /// The iterator handle.
        it: Value,
        /// Last-iteration hint (ManualWrite only).
        last: Option<Value>,
    },
}

impl OpKind {
    /// True for region terminators.
    pub fn is_terminator(&self) -> bool {
        if let OpKind::Predicated { .. } = self {
            return false;
        }
        matches!(
            self,
            OpKind::Yield(_) | OpKind::Condition { .. } | OpKind::Return(_) | OpKind::Exit
        )
    }

    /// Nested regions, in order (for generic traversal).
    pub fn regions(&self) -> Vec<&Region> {
        match self {
            OpKind::If { then, else_, .. } => vec![then, else_],
            OpKind::While { before, after, .. } => vec![before, after],
            OpKind::Foreach { body, .. }
            | OpKind::Replicate { body, .. }
            | OpKind::Fork { body, .. } => {
                vec![body]
            }
            _ => Vec::new(),
        }
    }

    /// Mutable nested regions.
    pub fn regions_mut(&mut self) -> Vec<&mut Region> {
        match self {
            OpKind::If { then, else_, .. } => vec![then, else_],
            OpKind::While { before, after, .. } => vec![before, after],
            OpKind::Foreach { body, .. }
            | OpKind::Replicate { body, .. }
            | OpKind::Fork { body, .. } => {
                vec![body]
            }
            _ => Vec::new(),
        }
    }

    /// Directly used values (not including region internals).
    pub fn operands(&self) -> Vec<Value> {
        match self {
            OpKind::ConstI(..) | OpKind::Exit | OpKind::AllocPop { .. } => Vec::new(),
            OpKind::Bin(_, a, b) => vec![*a, *b],
            OpKind::Select(c, t, f) => vec![*c, *t, *f],
            OpKind::Cast { v, .. } => vec![*v],
            OpKind::SramRead { addr, .. } | OpKind::SramDecFetch { addr, .. } => vec![*addr],
            OpKind::SramWrite { addr, val, .. } => vec![*addr, *val],
            OpKind::DramRead { idx, .. } => vec![*idx],
            OpKind::DramWrite { idx, val, .. } => vec![*idx, *val],
            OpKind::AllocPush { ptr, .. } => vec![*ptr],
            OpKind::BulkLoad {
                dram_base,
                sram_base,
                len,
                ..
            }
            | OpKind::BulkStore {
                dram_base,
                sram_base,
                len,
                ..
            } => vec![*dram_base, *sram_base, *len],
            OpKind::If { cond, .. } => vec![*cond],
            OpKind::While { inits, .. } => inits.clone(),
            OpKind::Foreach { lo, hi, step, .. } => vec![*lo, *hi, *step],
            OpKind::Replicate { .. } => Vec::new(),
            OpKind::Fork { count, .. } => vec![*count],
            OpKind::Yield(vs) | OpKind::Return(vs) => vs.clone(),
            OpKind::Condition { cond, fwd } => {
                let mut v = vec![*cond];
                v.extend(fwd);
                v
            }
            OpKind::Predicated { pred, inner, .. } => {
                let mut v = vec![*pred];
                v.extend(inner.operands());
                v
            }
            OpKind::ViewNew { base, .. } => base.iter().copied().collect(),
            OpKind::ViewRead { view, idx } => vec![*view, *idx],
            OpKind::ViewWrite { view, idx, val } => vec![*view, *idx, *val],
            OpKind::ItNew { seek, .. } => vec![*seek],
            OpKind::ItDeref { it } => vec![*it],
            OpKind::ItPeek { it, ahead } => vec![*it, *ahead],
            OpKind::ItWrite { it, val } => vec![*it, *val],
            OpKind::ItInc { it, last } => {
                let mut v = vec![*it];
                v.extend(last.iter());
                v
            }
        }
    }

    /// Mutates every direct operand through `f` (used by inlining and
    /// rewrite passes to remap values).
    pub fn map_operands(&mut self, f: &mut dyn FnMut(Value) -> Value) {
        match self {
            OpKind::ConstI(..) | OpKind::Exit | OpKind::AllocPop { .. } => {}
            OpKind::Bin(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            OpKind::Select(c, t, fl) => {
                *c = f(*c);
                *t = f(*t);
                *fl = f(*fl);
            }
            OpKind::Cast { v, .. } => *v = f(*v),
            OpKind::SramRead { addr, .. } | OpKind::SramDecFetch { addr, .. } => *addr = f(*addr),
            OpKind::SramWrite { addr, val, .. } => {
                *addr = f(*addr);
                *val = f(*val);
            }
            OpKind::DramRead { idx, .. } => *idx = f(*idx),
            OpKind::DramWrite { idx, val, .. } => {
                *idx = f(*idx);
                *val = f(*val);
            }
            OpKind::AllocPush { ptr, .. } => *ptr = f(*ptr),
            OpKind::BulkLoad {
                dram_base,
                sram_base,
                len,
                ..
            }
            | OpKind::BulkStore {
                dram_base,
                sram_base,
                len,
                ..
            } => {
                *dram_base = f(*dram_base);
                *sram_base = f(*sram_base);
                *len = f(*len);
            }
            OpKind::If { cond, .. } => *cond = f(*cond),
            OpKind::While { inits, .. } => {
                for v in inits {
                    *v = f(*v);
                }
            }
            OpKind::Foreach { lo, hi, step, .. } => {
                *lo = f(*lo);
                *hi = f(*hi);
                *step = f(*step);
            }
            OpKind::Replicate { .. } => {}
            OpKind::Fork { count, .. } => *count = f(*count),
            OpKind::Yield(vs) | OpKind::Return(vs) => {
                for v in vs {
                    *v = f(*v);
                }
            }
            OpKind::Condition { cond, fwd } => {
                *cond = f(*cond);
                for v in fwd {
                    *v = f(*v);
                }
            }
            OpKind::Predicated { pred, inner, .. } => {
                *pred = f(*pred);
                inner.map_operands(f);
            }
            OpKind::ViewNew { base, .. } => {
                if let Some(b) = base {
                    *b = f(*b);
                }
            }
            OpKind::ViewRead { view, idx } => {
                *view = f(*view);
                *idx = f(*idx);
            }
            OpKind::ViewWrite { view, idx, val } => {
                *view = f(*view);
                *idx = f(*idx);
                *val = f(*val);
            }
            OpKind::ItNew { seek, .. } => *seek = f(*seek),
            OpKind::ItDeref { it } => *it = f(*it),
            OpKind::ItPeek { it, ahead } => {
                *it = f(*it);
                *ahead = f(*ahead);
            }
            OpKind::ItWrite { it, val } => {
                *it = f(*it);
                *val = f(*val);
            }
            OpKind::ItInc { it, last } => {
                *it = f(*it);
                if let Some(l) = last {
                    *l = f(*l);
                }
            }
        }
    }

    /// True for side-effect-free, region-free value computations — the ops
    /// the classical optimizations (folding, CSE, DCE) may freely delete,
    /// duplicate, or replace when their results are unused or recomputable.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            OpKind::ConstI(..) | OpKind::Bin(..) | OpKind::Select(..) | OpKind::Cast { .. }
        )
    }

    /// True if this op (not counting nested regions) touches memory.
    pub fn is_memory(&self) -> bool {
        if let OpKind::Predicated { inner, .. } = self {
            return inner.is_memory();
        }
        matches!(
            self,
            OpKind::SramRead { .. }
                | OpKind::SramWrite { .. }
                | OpKind::SramDecFetch { .. }
                | OpKind::DramRead { .. }
                | OpKind::DramWrite { .. }
                | OpKind::AllocPop { .. }
                | OpKind::AllocPush { .. }
                | OpKind::BulkLoad { .. }
                | OpKind::BulkStore { .. }
                | OpKind::ViewRead { .. }
                | OpKind::ViewWrite { .. }
                | OpKind::ItDeref { .. }
                | OpKind::ItPeek { .. }
                | OpKind::ItWrite { .. }
                | OpKind::ItInc { .. }
        )
    }

    /// True for high-level Revet-dialect ops that must be lowered before CFG
    /// conversion.
    pub fn is_high_level(&self) -> bool {
        matches!(
            self,
            OpKind::ViewNew { .. }
                | OpKind::ViewRead { .. }
                | OpKind::ViewWrite { .. }
                | OpKind::ItNew { .. }
                | OpKind::ItDeref { .. }
                | OpKind::ItPeek { .. }
                | OpKind::ItWrite { .. }
                | OpKind::ItInc { .. }
                | OpKind::BulkLoad { .. }
                | OpKind::BulkStore { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_listing_and_mapping() {
        let mut k = OpKind::Bin(AluOp::Add, Value(1), Value(2));
        assert_eq!(k.operands(), vec![Value(1), Value(2)]);
        k.map_operands(&mut |v| Value(v.0 + 10));
        assert_eq!(k.operands(), vec![Value(11), Value(12)]);
    }

    #[test]
    fn terminator_classification() {
        assert!(OpKind::Yield(vec![]).is_terminator());
        assert!(OpKind::Exit.is_terminator());
        assert!(!OpKind::ConstI(0, Ty::I32).is_terminator());
    }

    #[test]
    fn region_traversal() {
        let k = OpKind::If {
            cond: Value(0),
            then: Region::default(),
            else_: Region::default(),
        };
        assert_eq!(k.regions().len(), 2);
    }

    #[test]
    fn memory_classification() {
        assert!(OpKind::DramRead {
            dram: DramRef(0),
            idx: Value(0)
        }
        .is_memory());
        assert!(OpKind::ItDeref { it: Value(0) }.is_high_level());
        assert!(!OpKind::Bin(AluOp::Add, Value(0), Value(1)).is_memory());
    }
}
