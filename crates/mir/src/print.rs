//! A human-readable textual form of MIR, for debugging and golden tests.

use crate::func::{Func, Module};
use crate::ops::{Op, OpKind, Region};
use std::fmt::Write as _;

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    for d in &m.drams {
        let _ = writeln!(s, "dram<{}B> @{};", d.elem_bytes, d.name);
    }
    for r in &m.srams {
        let _ = writeln!(s, "sram @{} [{} words];", r.name, r.words);
    }
    for a in &m.allocs {
        let _ = writeln!(s, "alloc @{} [max {}];", a.name, a.max);
    }
    for f in &m.funcs {
        s.push_str(&print_func(f));
    }
    s
}

/// Renders one function.
pub fn print_func(f: &Func) -> String {
    let mut s = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("%{}: {}", p.0, f.ty(*p)))
        .collect();
    let results: Vec<String> = f.results.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(
        s,
        "func @{}({}) -> ({}) {{",
        f.name,
        params.join(", "),
        results.join(", ")
    );
    print_region(&f.body, f, 1, &mut s);
    s.push_str("}\n");
    s
}

fn indent(n: usize, s: &mut String) {
    for _ in 0..n {
        s.push_str("  ");
    }
}

fn print_region(r: &Region, f: &Func, depth: usize, s: &mut String) {
    if !r.args.is_empty() {
        indent(depth, s);
        let args: Vec<String> = r
            .args
            .iter()
            .map(|a| format!("%{}: {}", a.0, f.ty(*a)))
            .collect();
        let _ = writeln!(s, "^({}):", args.join(", "));
    }
    for op in &r.ops {
        print_op(op, f, depth, s);
    }
}

fn vals(vs: &[crate::ops::Value]) -> String {
    vs.iter()
        .map(|v| format!("%{}", v.0))
        .collect::<Vec<_>>()
        .join(", ")
}

fn print_op(op: &Op, f: &Func, depth: usize, s: &mut String) {
    indent(depth, s);
    if !op.results.is_empty() {
        let _ = write!(s, "{} = ", vals(&op.results));
    }
    match &op.kind {
        OpKind::ConstI(v, ty) => {
            let _ = writeln!(s, "const {v} : {ty}");
        }
        OpKind::Bin(alu, a, b) => {
            let _ = writeln!(s, "{alu:?} %{}, %{}", a.0, b.0);
        }
        OpKind::Select(c, t, fl) => {
            let _ = writeln!(s, "select %{}, %{}, %{}", c.0, t.0, fl.0);
        }
        OpKind::Cast { v, to, signed } => {
            let _ = writeln!(s, "cast %{} to {to} (signed={signed})", v.0);
        }
        OpKind::SramRead { sram, addr } => {
            let _ = writeln!(s, "sram.read #{}[%{}]", sram.0, addr.0);
        }
        OpKind::SramWrite { sram, addr, val } => {
            let _ = writeln!(s, "sram.write #{}[%{}] = %{}", sram.0, addr.0, val.0);
        }
        OpKind::SramDecFetch { sram, addr } => {
            let _ = writeln!(s, "sram.decfetch #{}[%{}]", sram.0, addr.0);
        }
        OpKind::DramRead { dram, idx } => {
            let _ = writeln!(s, "dram.read @{}[%{}]", dram.0, idx.0);
        }
        OpKind::DramWrite { dram, idx, val } => {
            let _ = writeln!(s, "dram.write @{}[%{}] = %{}", dram.0, idx.0, val.0);
        }
        OpKind::AllocPop { alloc } => {
            let _ = writeln!(s, "alloc.pop #{}", alloc.0);
        }
        OpKind::AllocPush { alloc, ptr } => {
            let _ = writeln!(s, "alloc.push #{} %{}", alloc.0, ptr.0);
        }
        OpKind::BulkLoad {
            dram,
            dram_base,
            sram,
            sram_base,
            len,
        } => {
            let _ = writeln!(
                s,
                "bulk.load @{}[%{}..] -> #{}[%{}..] x %{}",
                dram.0, dram_base.0, sram.0, sram_base.0, len.0
            );
        }
        OpKind::BulkStore {
            dram,
            dram_base,
            sram,
            sram_base,
            len,
        } => {
            let _ = writeln!(
                s,
                "bulk.store #{}[%{}..] -> @{}[%{}..] x %{}",
                sram.0, sram_base.0, dram.0, dram_base.0, len.0
            );
        }
        OpKind::If { cond, then, else_ } => {
            let _ = writeln!(s, "if %{} {{", cond.0);
            print_region(then, f, depth + 1, s);
            indent(depth, s);
            s.push_str("} else {\n");
            print_region(else_, f, depth + 1, s);
            indent(depth, s);
            s.push_str("}\n");
        }
        OpKind::While {
            inits,
            before,
            after,
        } => {
            let _ = writeln!(s, "while ({}) {{", vals(inits));
            print_region(before, f, depth + 1, s);
            indent(depth, s);
            s.push_str("} do {\n");
            print_region(after, f, depth + 1, s);
            indent(depth, s);
            s.push_str("}\n");
        }
        OpKind::Foreach {
            lo,
            hi,
            step,
            body,
            reduce,
            flags,
        } => {
            let _ = writeln!(
                s,
                "foreach %{}..%{} by %{} reduce {:?}{} {{",
                lo.0,
                hi.0,
                step.0,
                reduce,
                if flags.eliminate_hierarchy {
                    " [eliminate_hierarchy]"
                } else {
                    ""
                }
            );
            print_region(body, f, depth + 1, s);
            indent(depth, s);
            s.push_str("}\n");
        }
        OpKind::Replicate { ways, body } => {
            let _ = writeln!(s, "replicate ({ways}) {{");
            print_region(body, f, depth + 1, s);
            indent(depth, s);
            s.push_str("}\n");
        }
        OpKind::Fork { count, body } => {
            let _ = writeln!(s, "fork (%{}) {{", count.0);
            print_region(body, f, depth + 1, s);
            indent(depth, s);
            s.push_str("}\n");
        }
        OpKind::Predicated {
            pred,
            expect,
            inner,
        } => {
            let _ = write!(s, "when %{}=={} : ", pred.0, expect);
            let inner_op = Op {
                kind: (**inner).clone(),
                results: vec![],
            };
            print_op(&inner_op, f, 0, s);
        }
        OpKind::Exit => s.push_str("exit\n"),
        OpKind::Yield(vs) => {
            let _ = writeln!(s, "yield {}", vals(vs));
        }
        OpKind::Condition { cond, fwd } => {
            let _ = writeln!(s, "condition %{} fwd [{}]", cond.0, vals(fwd));
        }
        OpKind::Return(vs) => {
            let _ = writeln!(s, "return {}", vals(vs));
        }
        OpKind::ViewNew {
            kind,
            dram,
            base,
            size,
        } => {
            let _ = writeln!(
                s,
                "view.new {kind:?} dram={dram:?} base={base:?} size={size}"
            );
        }
        OpKind::ViewRead { view, idx } => {
            let _ = writeln!(s, "view.read %{}[%{}]", view.0, idx.0);
        }
        OpKind::ViewWrite { view, idx, val } => {
            let _ = writeln!(s, "view.write %{}[%{}] = %{}", view.0, idx.0, val.0);
        }
        OpKind::ItNew {
            kind, dram, seek, ..
        } => {
            let _ = writeln!(s, "it.new {kind:?} @{} seek=%{}", dram.0, seek.0);
        }
        OpKind::ItDeref { it } => {
            let _ = writeln!(s, "it.deref %{}", it.0);
        }
        OpKind::ItPeek { it, ahead } => {
            let _ = writeln!(s, "it.peek %{} + %{}", it.0, ahead.0);
        }
        OpKind::ItWrite { it, val } => {
            let _ = writeln!(s, "it.write %{} = %{}", it.0, val.0);
        }
        OpKind::ItInc { it, last } => {
            let _ = writeln!(s, "it.inc %{} last={last:?}", it.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::RegionBuilder;
    use crate::ops::AluOp;
    use crate::types::Ty;

    #[test]
    fn prints_function() {
        let mut f = Func::new("main", &[Ty::I32], vec![Ty::I32]);
        let p = f.params[0];
        let mut b = RegionBuilder::new();
        let one = b.const_i32(&mut f, 1);
        let r = b.bin(&mut f, AluOp::Add, p, one);
        b.emit0(OpKind::Return(vec![r]));
        f.body = b.build();
        let text = print_func(&f);
        assert!(text.contains("func @main"));
        assert!(text.contains("const 1"));
        assert!(text.contains("Add"));
        assert!(text.contains("return %2"));
    }
}
