//! Property test for the classical optimization pipeline: on randomly
//! generated straight-line MIR (constants, ALU ops, selects, casts, and
//! DRAM writes), the optimized module must be interpreter-equivalent to
//! the original — same final DRAM image — and must keep its `SpanTable`
//! free of dangling entries and the module structurally valid.

use revet_diag::Span;
use revet_mir::{
    verify_module, AluOp, ConstFold, Cse, Dce, DramLayout, ForeachFlags, Interp, Module, OpKind,
    PassManager, Region, RegionBuilder, Simplify, SinkConsts, Ty, Value,
};
use revet_sltf::Word;

/// Deterministic xorshift64* — the workspace has no RNG dependency, and
/// the test must reproduce from its printed seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

const ALU_OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::DivS,
    AluOp::DivU,
    AluOp::RemS,
    AluOp::RemU,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::ShrU,
    AluOp::ShrS,
    AluOp::Eq,
    AluOp::Ne,
    AluOp::LtS,
    AluOp::LtU,
    AluOp::LeS,
    AluOp::LeU,
    AluOp::GtS,
    AluOp::GtU,
    AluOp::GeS,
    AluOp::GeU,
    AluOp::MinS,
    AluOp::MinU,
    AluOp::MaxS,
    AluOp::MaxU,
    AluOp::Rotl,
];

const DRAM_WORDS: u64 = 64;
const DRAM_BYTES: usize = 1 << 12;

/// Builds a random straight-line `main(i32, i32)` with `len` ops: pure
/// compute over a growing pool of i32 values, interleaved with DRAM
/// writes at bounded indices. Every op result gets a span so DCE/CSE
/// exercise the side-table maintenance.
fn random_module(rng: &mut Rng, len: usize) -> Module {
    let mut m = Module::default();
    let dram = m.add_dram("out", 4);
    let mut f = revet_mir::Func::new("main", &[Ty::I32, Ty::I32], vec![]);
    let mut pool: Vec<Value> = f.params.clone();
    let mut b = RegionBuilder::new();
    let mut span_at = 0u32;
    let mut emit = |b: &mut RegionBuilder, f: &mut revet_mir::Func, kind: OpKind, ty: Ty| {
        let v = b.emit(f, kind, ty);
        f.spans.set(v, Span::new(span_at, span_at + 1));
        span_at += 2;
        v
    };
    for _ in 0..len {
        match rng.below(10) {
            0 | 1 => {
                // Mix of small, boundary, and subword-hostile constants.
                let c = [0i64, 1, -1, 7, 200, 0x7fff_ffff, -40_000][rng.below(7) as usize];
                let v = emit(&mut b, &mut f, OpKind::ConstI(c, Ty::I32), Ty::I32);
                pool.push(v);
            }
            2 => {
                let (c, t, fv) = (*rng.pick(&pool), *rng.pick(&pool), *rng.pick(&pool));
                let v = emit(&mut b, &mut f, OpKind::Select(c, t, fv), Ty::I32);
                pool.push(v);
            }
            3 => {
                let to = *rng.pick(&[Ty::I8, Ty::I16, Ty::I32]);
                let signed = rng.below(2) == 0;
                let src = *rng.pick(&pool);
                // Cast back to i32 width so the result can rejoin the pool
                // without violating operand typing; the intermediate
                // subword semantics still run through `Cast`.
                let narrowed = emit(&mut b, &mut f, OpKind::Cast { v: src, to, signed }, to);
                let widened = emit(
                    &mut b,
                    &mut f,
                    OpKind::Cast {
                        v: narrowed,
                        to: Ty::I32,
                        signed,
                    },
                    Ty::I32,
                );
                pool.push(widened);
            }
            4 => {
                let idx = emit(
                    &mut b,
                    &mut f,
                    OpKind::ConstI(rng.below(DRAM_WORDS) as i64, Ty::I32),
                    Ty::I32,
                );
                let val = *rng.pick(&pool);
                b.push(OpKind::DramWrite { dram, idx, val }, vec![]);
            }
            _ => {
                let op = *rng.pick(ALU_OPS);
                let (a, c) = (*rng.pick(&pool), *rng.pick(&pool));
                let v = emit(&mut b, &mut f, OpKind::Bin(op, a, c), Ty::I32);
                pool.push(v);
            }
        }
    }
    b.emit0(OpKind::Return(vec![]));
    f.body = b.build();
    m.funcs.push(f);
    m
}

fn interp_dram(m: &Module, args: &[Word]) -> Vec<u8> {
    let layout = DramLayout { base: vec![0] };
    let mut mem = m.build_memory(DRAM_BYTES);
    Interp::new(m, &layout, &mut mem)
        .with_fuel(10_000_000)
        .run("main", args)
        .expect("straight-line program cannot fail");
    mem.dram
}

fn classical_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(ConstFold)
        .add(Simplify)
        .add(Dce)
        .add(Cse)
        .add(ConstFold)
        .add(Simplify)
        .add(Dce);
    pm
}

#[test]
fn random_straight_line_programs_are_opt_invariant() {
    let mut rng = Rng(0x0BAD_5EED_CAFE_F00D);
    for case in 0..120 {
        let seed = rng.next() | 1;
        let mut gen = Rng(seed);
        let len = 4 + gen.below(60) as usize;
        let mut m = random_module(&mut gen, len);
        verify_module(&m).unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): {e}"));

        let args = [Word(gen.next() as u32), Word(gen.next() as u32)];
        let before = interp_dram(&m, &args);

        let report = classical_pipeline().run(&mut m);
        assert!(
            report.ops_after() <= report.ops_before(),
            "case {case} (seed {seed:#x}): optimizer grew the module"
        );
        verify_module(&m)
            .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): broken after opt: {e}"));
        for f in &m.funcs {
            let dangling = f.dangling_spans();
            assert!(
                dangling.is_empty(),
                "case {case} (seed {seed:#x}): dangling spans {dangling:?}"
            );
        }

        let after = interp_dram(&m, &args);
        assert_eq!(
            before, after,
            "case {case} (seed {seed:#x}, len {len}): optimized program diverged"
        );
    }
}

// ---------------- nested-region properties ----------------

/// Emits random pure compute + bounded DRAM writes into `b`, growing
/// `pool`. Every result gets a span.
struct NestedGen<'a> {
    rng: &'a mut Rng,
    span_at: u32,
}

impl NestedGen<'_> {
    fn emit(&mut self, b: &mut RegionBuilder, f: &mut revet_mir::Func, kind: OpKind) -> Value {
        let v = b.emit(f, kind, Ty::I32);
        f.spans.set(v, Span::new(self.span_at, self.span_at + 1));
        self.span_at += 2;
        v
    }

    fn payload(
        &mut self,
        b: &mut RegionBuilder,
        f: &mut revet_mir::Func,
        pool: &mut Vec<Value>,
        dram: revet_mir::DramRef,
        n: usize,
    ) {
        for _ in 0..n {
            match self.rng.below(6) {
                0 => {
                    let c = [0i64, 1, -1, 7, 200, 0x7fff_ffff][self.rng.below(6) as usize];
                    let v = self.emit(b, f, OpKind::ConstI(c, Ty::I32));
                    pool.push(v);
                }
                1 => {
                    let slot = self.rng.below(DRAM_WORDS) as i64;
                    let idx = self.emit(b, f, OpKind::ConstI(slot, Ty::I32));
                    let val = *self.rng.pick(pool);
                    b.push(OpKind::DramWrite { dram, idx, val }, vec![]);
                }
                _ => {
                    let op = *self.rng.pick(ALU_OPS);
                    let (a, c) = (*self.rng.pick(pool), *self.rng.pick(pool));
                    let v = self.emit(b, f, OpKind::Bin(op, a, c));
                    pool.push(v);
                }
            }
        }
    }

    /// One nested construct chosen at random; region-local values never
    /// leak back into `pool` except through op results.
    fn nested(
        &mut self,
        b: &mut RegionBuilder,
        f: &mut revet_mir::Func,
        pool: &mut Vec<Value>,
        dram: revet_mir::DramRef,
        depth: usize,
    ) {
        match self.rng.below(3) {
            // Counted while: carried counter runs 0..limit (limit ≤ 4).
            0 => {
                let bound = 1 + self.rng.below(4) as i64;
                let limit = self.emit(b, f, OpKind::ConstI(bound, Ty::I32));
                let zero = self.emit(b, f, OpKind::ConstI(0, Ty::I32));
                let one = self.emit(b, f, OpKind::ConstI(1, Ty::I32));
                let cv = f.new_value(Ty::I32);
                let mut before = RegionBuilder::with_args(vec![cv]);
                let cond = self.emit(&mut before, f, OpKind::Bin(AluOp::LtU, cv, limit));
                before.emit0(OpKind::Condition {
                    cond,
                    fwd: vec![cv],
                });
                let av = f.new_value(Ty::I32);
                let mut after = RegionBuilder::with_args(vec![av]);
                let mut inner = pool.clone();
                inner.push(av);
                self.payload(&mut after, f, &mut inner, dram, 3);
                if depth > 0 && self.rng.below(2) == 0 {
                    self.nested(&mut after, f, &mut inner, dram, depth - 1);
                }
                let next = self.emit(&mut after, f, OpKind::Bin(AluOp::Add, av, one));
                after.emit0(OpKind::Yield(vec![next]));
                let r = f.new_value(Ty::I32);
                b.push(
                    OpKind::While {
                        inits: vec![zero],
                        before: before.build(),
                        after: after.build(),
                    },
                    vec![r],
                );
                pool.push(r);
            }
            // Foreach, plain or add-reducing over the thread index.
            1 => {
                let lo = self.emit(b, f, OpKind::ConstI(0, Ty::I32));
                let trips = self.rng.below(5) as i64;
                let hi = self.emit(b, f, OpKind::ConstI(trips, Ty::I32));
                let step = self.emit(b, f, OpKind::ConstI(1, Ty::I32));
                let idx = f.new_value(Ty::I32);
                let mut body = RegionBuilder::with_args(vec![idx]);
                let mut inner = pool.clone();
                inner.push(idx);
                self.payload(&mut body, f, &mut inner, dram, 3);
                if depth > 0 && self.rng.below(2) == 0 {
                    self.nested(&mut body, f, &mut inner, dram, depth - 1);
                }
                if self.rng.below(2) == 0 {
                    let y = *self.rng.pick(&inner);
                    body.emit0(OpKind::Yield(vec![y]));
                    let r = f.new_value(Ty::I32);
                    b.push(
                        OpKind::Foreach {
                            lo,
                            hi,
                            step,
                            body: body.build(),
                            reduce: vec![AluOp::Add],
                            flags: ForeachFlags::default(),
                        },
                        vec![r],
                    );
                    pool.push(r);
                } else {
                    body.emit0(OpKind::Yield(vec![]));
                    b.push(
                        OpKind::Foreach {
                            lo,
                            hi,
                            step,
                            body: body.build(),
                            reduce: vec![],
                            flags: ForeachFlags::default(),
                        },
                        vec![],
                    );
                }
            }
            // If whose branches each yield one value.
            _ => {
                let cond = *self.rng.pick(pool);
                let mut then_b = RegionBuilder::new();
                let mut then_pool = pool.clone();
                self.payload(&mut then_b, f, &mut then_pool, dram, 2);
                let tv = *self.rng.pick(&then_pool);
                then_b.emit0(OpKind::Yield(vec![tv]));
                let mut else_b = RegionBuilder::new();
                let mut else_pool = pool.clone();
                self.payload(&mut else_b, f, &mut else_pool, dram, 2);
                let ev = *self.rng.pick(&else_pool);
                else_b.emit0(OpKind::Yield(vec![ev]));
                let r = f.new_value(Ty::I32);
                b.push(
                    OpKind::If {
                        cond,
                        then: then_b.build(),
                        else_: else_b.build(),
                    },
                    vec![r],
                );
                pool.push(r);
            }
        }
    }
}

/// A random `main` whose body mixes straight-line batches with nested
/// while/foreach/if regions (two levels deep).
fn random_nested_module(rng: &mut Rng) -> Module {
    let mut m = Module::default();
    let dram = m.add_dram("out", 4);
    let mut f = revet_mir::Func::new("main", &[Ty::I32, Ty::I32], vec![]);
    let mut pool: Vec<Value> = f.params.clone();
    let mut b = RegionBuilder::new();
    let mut g = NestedGen { rng, span_at: 0 };
    g.payload(&mut b, &mut f, &mut pool, dram, 4);
    for _ in 0..(1 + g.rng.below(3)) {
        g.nested(&mut b, &mut f, &mut pool, dram, 1);
        g.payload(&mut b, &mut f, &mut pool, dram, 3);
    }
    b.emit0(OpKind::Return(vec![]));
    f.body = b.build();
    m.funcs.push(f);
    m
}

/// The classical pipeline plus constant sinking, mirroring the staged
/// `-O2` ordering (sink after CSE, DCE last).
fn sinking_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(ConstFold)
        .add(Simplify)
        .add(Dce)
        .add(Cse)
        .add(ConstFold)
        .add(Simplify)
        .add(SinkConsts)
        .add(Dce);
    pm
}

#[test]
fn random_nested_region_programs_are_opt_invariant() {
    let mut rng = Rng(0x00DD_BA11_DEAD_BEEF);
    for case in 0..80 {
        let seed = rng.next() | 1;
        let mut gen = Rng(seed);
        let mut m = random_nested_module(&mut gen);
        verify_module(&m).unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): {e}"));

        let args = [Word(gen.next() as u32), Word(gen.next() as u32)];
        let before = interp_dram(&m, &args);

        sinking_pipeline().run(&mut m);
        verify_module(&m)
            .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): broken after opt: {e}"));
        for f in &m.funcs {
            let dangling = f.dangling_spans();
            assert!(
                dangling.is_empty(),
                "case {case} (seed {seed:#x}): dangling spans {dangling:?}"
            );
        }

        let after = interp_dram(&m, &args);
        assert_eq!(
            before, after,
            "case {case} (seed {seed:#x}): nested-region program diverged"
        );
    }
}

// ---------------- directed region-boundary tests ----------------

/// Counts ops matching `pred` in `region` and every nested region.
fn count_ops(region: &Region, pred: &mut dyn FnMut(&OpKind) -> bool) -> usize {
    let mut n = 0;
    for op in &region.ops {
        if pred(&op.kind) {
            n += 1;
        }
        for sub in op.kind.regions() {
            n += count_ops(sub, pred);
        }
    }
    n
}

/// Builds `main` computing `xor(p0, p1)` both before a counted loop and
/// inside its body (or inside an `if` branch when `use_if`). Both uses
/// feed DRAM writes so DCE can't interfere with the count.
fn boundary_module(use_if: bool) -> Module {
    let mut m = Module::default();
    let dram = m.add_dram("out", 4);
    let mut f = revet_mir::Func::new("main", &[Ty::I32, Ty::I32], vec![]);
    let (p0, p1) = (f.params[0], f.params[1]);
    let mut b = RegionBuilder::new();
    let x_outer = b.emit(&mut f, OpKind::Bin(AluOp::Xor, p0, p1), Ty::I32);
    let i0 = b.emit(&mut f, OpKind::ConstI(0, Ty::I32), Ty::I32);
    b.push(
        OpKind::DramWrite {
            dram,
            idx: i0,
            val: x_outer,
        },
        vec![],
    );
    if use_if {
        let mut then_b = RegionBuilder::new();
        let x_inner = then_b.emit(&mut f, OpKind::Bin(AluOp::Xor, p0, p1), Ty::I32);
        then_b.emit0(OpKind::Yield(vec![x_inner]));
        let mut else_b = RegionBuilder::new();
        else_b.emit0(OpKind::Yield(vec![p0]));
        let r = f.new_value(Ty::I32);
        b.push(
            OpKind::If {
                cond: p0,
                then: then_b.build(),
                else_: else_b.build(),
            },
            vec![r],
        );
        let i1 = b.emit(&mut f, OpKind::ConstI(1, Ty::I32), Ty::I32);
        b.push(
            OpKind::DramWrite {
                dram,
                idx: i1,
                val: r,
            },
            vec![],
        );
    } else {
        let zero = b.emit(&mut f, OpKind::ConstI(0, Ty::I32), Ty::I32);
        let two = b.emit(&mut f, OpKind::ConstI(2, Ty::I32), Ty::I32);
        let one = b.emit(&mut f, OpKind::ConstI(1, Ty::I32), Ty::I32);
        let cv = f.new_value(Ty::I32);
        let mut before = RegionBuilder::with_args(vec![cv]);
        let cond = before.emit(&mut f, OpKind::Bin(AluOp::LtU, cv, two), Ty::I32);
        before.emit0(OpKind::Condition {
            cond,
            fwd: vec![cv],
        });
        let av = f.new_value(Ty::I32);
        let mut after = RegionBuilder::with_args(vec![av]);
        let x_inner = after.emit(&mut f, OpKind::Bin(AluOp::Xor, p0, p1), Ty::I32);
        let i1 = after.emit(&mut f, OpKind::ConstI(1, Ty::I32), Ty::I32);
        after.push(
            OpKind::DramWrite {
                dram,
                idx: i1,
                val: x_inner,
            },
            vec![],
        );
        let next = after.emit(&mut f, OpKind::Bin(AluOp::Add, av, one), Ty::I32);
        after.emit0(OpKind::Yield(vec![next]));
        let r = f.new_value(Ty::I32);
        b.push(
            OpKind::While {
                inits: vec![zero],
                before: before.build(),
                after: after.build(),
            },
            vec![r],
        );
    }
    b.emit0(OpKind::Return(vec![]));
    f.body = b.build();
    m.funcs.push(f);
    m
}

/// `while` bodies recirculate their free uses as loop-carried state, so
/// CSE must NOT treat expressions from the enclosing region as available
/// inside — the redundant `xor` stays.
#[test]
fn cse_keeps_redundant_exprs_across_while_boundaries() {
    let mut m = boundary_module(false);
    verify_module(&m).expect("fixture is valid");
    let mut pm = PassManager::new();
    pm.add(Cse);
    pm.run(&mut m);
    verify_module(&m).expect("valid after cse");
    let xors = count_ops(&m.funcs[0].body, &mut |k| {
        matches!(k, OpKind::Bin(AluOp::Xor, _, _))
    });
    assert_eq!(
        xors, 2,
        "cse must not merge a while-body expr with the enclosing region"
    );
}

/// The same redundancy across an `if` boundary IS merged — `if` lowers to
/// filter/merge pipelines, not a recirculating tuple, so availability
/// flows in.
#[test]
fn cse_merges_redundant_exprs_into_if_branches() {
    let mut m = boundary_module(true);
    verify_module(&m).expect("fixture is valid");
    let mut pm = PassManager::new();
    pm.add(Cse);
    pm.run(&mut m);
    verify_module(&m).expect("valid after cse");
    let xors = count_ops(&m.funcs[0].body, &mut |k| {
        matches!(k, OpKind::Bin(AluOp::Xor, _, _))
    });
    assert_eq!(xors, 1, "cse should merge across an if boundary");
}

/// A constant defined outside a `while` but used only inside its body
/// must be rematerialized into the body by `SinkConsts` (and the outer
/// copy DCE'd), so the loop tuple never threads a constant.
#[test]
fn sink_consts_rematerializes_into_while_bodies() {
    let mut m = Module::default();
    let dram = m.add_dram("out", 4);
    let mut f = revet_mir::Func::new("main", &[Ty::I32], vec![]);
    let mut b = RegionBuilder::new();
    let magic = b.emit(&mut f, OpKind::ConstI(123, Ty::I32), Ty::I32);
    let zero = b.emit(&mut f, OpKind::ConstI(0, Ty::I32), Ty::I32);
    let two = b.emit(&mut f, OpKind::ConstI(2, Ty::I32), Ty::I32);
    let one = b.emit(&mut f, OpKind::ConstI(1, Ty::I32), Ty::I32);
    let cv = f.new_value(Ty::I32);
    let mut before = RegionBuilder::with_args(vec![cv]);
    let cond = before.emit(&mut f, OpKind::Bin(AluOp::LtU, cv, two), Ty::I32);
    before.emit0(OpKind::Condition {
        cond,
        fwd: vec![cv],
    });
    let av = f.new_value(Ty::I32);
    let mut after = RegionBuilder::with_args(vec![av]);
    after.push(
        OpKind::DramWrite {
            dram,
            idx: av,
            val: magic,
        },
        vec![],
    );
    let next = after.emit(&mut f, OpKind::Bin(AluOp::Add, av, one), Ty::I32);
    after.emit0(OpKind::Yield(vec![next]));
    let r = f.new_value(Ty::I32);
    b.push(
        OpKind::While {
            inits: vec![zero],
            before: before.build(),
            after: after.build(),
        },
        vec![r],
    );
    b.emit0(OpKind::Return(vec![]));
    f.body = b.build();
    m.funcs.push(f);
    verify_module(&m).expect("fixture is valid");

    let args = [Word(5)];
    let before_img = interp_dram(&m, &args);
    let mut pm = PassManager::new();
    pm.add(SinkConsts).add(Dce);
    pm.run(&mut m);
    verify_module(&m).expect("valid after sinking");

    let top = &m.funcs[0].body;
    let outer_magic = top
        .ops
        .iter()
        .filter(|o| matches!(o.kind, OpKind::ConstI(123, _)))
        .count();
    assert_eq!(outer_magic, 0, "outer constant should be sunk + DCE'd");
    let total_magic = count_ops(top, &mut |k| matches!(k, OpKind::ConstI(123, _)));
    assert_eq!(total_magic, 1, "exactly one rematerialized copy survives");
    assert_eq!(
        interp_dram(&m, &args),
        before_img,
        "sinking must not change behavior"
    );
}
