//! Property test for the classical optimization pipeline: on randomly
//! generated straight-line MIR (constants, ALU ops, selects, casts, and
//! DRAM writes), the optimized module must be interpreter-equivalent to
//! the original — same final DRAM image — and must keep its `SpanTable`
//! free of dangling entries and the module structurally valid.

use revet_diag::Span;
use revet_mir::{
    verify_module, AluOp, ConstFold, Cse, Dce, DramLayout, Interp, Module, OpKind, PassManager,
    RegionBuilder, Simplify, Ty, Value,
};
use revet_sltf::Word;

/// Deterministic xorshift64* — the workspace has no RNG dependency, and
/// the test must reproduce from its printed seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

const ALU_OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::DivS,
    AluOp::DivU,
    AluOp::RemS,
    AluOp::RemU,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::ShrU,
    AluOp::ShrS,
    AluOp::Eq,
    AluOp::Ne,
    AluOp::LtS,
    AluOp::LtU,
    AluOp::LeS,
    AluOp::LeU,
    AluOp::GtS,
    AluOp::GtU,
    AluOp::GeS,
    AluOp::GeU,
    AluOp::MinS,
    AluOp::MinU,
    AluOp::MaxS,
    AluOp::MaxU,
    AluOp::Rotl,
];

const DRAM_WORDS: u64 = 64;
const DRAM_BYTES: usize = 1 << 12;

/// Builds a random straight-line `main(i32, i32)` with `len` ops: pure
/// compute over a growing pool of i32 values, interleaved with DRAM
/// writes at bounded indices. Every op result gets a span so DCE/CSE
/// exercise the side-table maintenance.
fn random_module(rng: &mut Rng, len: usize) -> Module {
    let mut m = Module::default();
    let dram = m.add_dram("out", 4);
    let mut f = revet_mir::Func::new("main", &[Ty::I32, Ty::I32], vec![]);
    let mut pool: Vec<Value> = f.params.clone();
    let mut b = RegionBuilder::new();
    let mut span_at = 0u32;
    let mut emit = |b: &mut RegionBuilder, f: &mut revet_mir::Func, kind: OpKind, ty: Ty| {
        let v = b.emit(f, kind, ty);
        f.spans.set(v, Span::new(span_at, span_at + 1));
        span_at += 2;
        v
    };
    for _ in 0..len {
        match rng.below(10) {
            0 | 1 => {
                // Mix of small, boundary, and subword-hostile constants.
                let c = [0i64, 1, -1, 7, 200, 0x7fff_ffff, -40_000][rng.below(7) as usize];
                let v = emit(&mut b, &mut f, OpKind::ConstI(c, Ty::I32), Ty::I32);
                pool.push(v);
            }
            2 => {
                let (c, t, fv) = (*rng.pick(&pool), *rng.pick(&pool), *rng.pick(&pool));
                let v = emit(&mut b, &mut f, OpKind::Select(c, t, fv), Ty::I32);
                pool.push(v);
            }
            3 => {
                let to = *rng.pick(&[Ty::I8, Ty::I16, Ty::I32]);
                let signed = rng.below(2) == 0;
                let src = *rng.pick(&pool);
                // Cast back to i32 width so the result can rejoin the pool
                // without violating operand typing; the intermediate
                // subword semantics still run through `Cast`.
                let narrowed = emit(&mut b, &mut f, OpKind::Cast { v: src, to, signed }, to);
                let widened = emit(
                    &mut b,
                    &mut f,
                    OpKind::Cast {
                        v: narrowed,
                        to: Ty::I32,
                        signed,
                    },
                    Ty::I32,
                );
                pool.push(widened);
            }
            4 => {
                let idx = emit(
                    &mut b,
                    &mut f,
                    OpKind::ConstI(rng.below(DRAM_WORDS) as i64, Ty::I32),
                    Ty::I32,
                );
                let val = *rng.pick(&pool);
                b.push(OpKind::DramWrite { dram, idx, val }, vec![]);
            }
            _ => {
                let op = *rng.pick(ALU_OPS);
                let (a, c) = (*rng.pick(&pool), *rng.pick(&pool));
                let v = emit(&mut b, &mut f, OpKind::Bin(op, a, c), Ty::I32);
                pool.push(v);
            }
        }
    }
    b.emit0(OpKind::Return(vec![]));
    f.body = b.build();
    m.funcs.push(f);
    m
}

fn interp_dram(m: &Module, args: &[Word]) -> Vec<u8> {
    let layout = DramLayout { base: vec![0] };
    let mut mem = m.build_memory(DRAM_BYTES);
    Interp::new(m, &layout, &mut mem)
        .with_fuel(10_000_000)
        .run("main", args)
        .expect("straight-line program cannot fail");
    mem.dram
}

fn classical_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(ConstFold)
        .add(Simplify)
        .add(Dce)
        .add(Cse)
        .add(ConstFold)
        .add(Simplify)
        .add(Dce);
    pm
}

#[test]
fn random_straight_line_programs_are_opt_invariant() {
    let mut rng = Rng(0x0BAD_5EED_CAFE_F00D);
    for case in 0..120 {
        let seed = rng.next() | 1;
        let mut gen = Rng(seed);
        let len = 4 + gen.below(60) as usize;
        let mut m = random_module(&mut gen, len);
        verify_module(&m).unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): {e}"));

        let args = [Word(gen.next() as u32), Word(gen.next() as u32)];
        let before = interp_dram(&m, &args);

        let report = classical_pipeline().run(&mut m);
        assert!(
            report.ops_after() <= report.ops_before(),
            "case {case} (seed {seed:#x}): optimizer grew the module"
        );
        verify_module(&m)
            .unwrap_or_else(|e| panic!("case {case} (seed {seed:#x}): broken after opt: {e}"));
        for f in &m.funcs {
            let dangling = f.dangling_spans();
            assert!(
                dangling.is_empty(),
                "case {case} (seed {seed:#x}): dangling spans {dangling:?}"
            );
        }

        let after = interp_dram(&m, &args);
        assert_eq!(
            before, after,
            "case {case} (seed {seed:#x}, len {len}): optimized program diverged"
        );
    }
}
