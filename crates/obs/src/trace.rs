//! Bounded ring-buffered trace of typed events, exportable as Chrome
//! `trace_event` JSON (the format Perfetto and `chrome://tracing` load).
//!
//! Timestamps are *monotonic ticks* — a per-sink atomic sequence number, not
//! wall clock — so event order is exact and recording never calls into the
//! OS. Thread ids are small dense integers assigned on first use.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};

/// Why the scheduler woke a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeCause {
    /// An input channel gained tokens.
    TokenArrival,
    /// A full output channel regained capacity.
    CapacityRelease,
    /// An allocator queue the node can block on received a pointer.
    AllocatorPush,
}

impl WakeCause {
    /// Stable lowercase name, used in trace export.
    pub fn name(self) -> &'static str {
        match self {
            WakeCause::TokenArrival => "token_arrival",
            WakeCause::CapacityRelease => "capacity_release",
            WakeCause::AllocatorPush => "allocator_push",
        }
    }
}

/// The typed payload of one trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The scheduler stepped a node (`productive` = it made progress).
    NodeDispatch {
        /// Graph node id.
        node: u32,
        /// Whether the step moved tokens.
        productive: bool,
    },
    /// Tokens entered a channel.
    ChannelPush {
        /// Channel id.
        chan: u32,
    },
    /// Tokens left a channel.
    ChannelPop {
        /// Channel id.
        chan: u32,
    },
    /// The scheduler re-queued a node for a classified reason.
    Wake {
        /// Graph node id.
        node: u32,
        /// The classified wake cause.
        cause: WakeCause,
    },
    /// A fused plan segment fired.
    SegmentFire {
        /// Segment index within the plan.
        seg: u32,
        /// Number of fused stages in the segment.
        stages: u32,
    },
    /// The timed simulator moved DRAM bytes this cycle.
    DramAccess {
        /// Bytes read this cycle.
        read_bytes: u64,
        /// Bytes written this cycle.
        written_bytes: u64,
    },
    /// A compile stage finished.
    CompileStage {
        /// Stage name (`parse`, `lower_mir`, ...).
        stage: &'static str,
        /// Stage wall time in microseconds.
        micros: u64,
    },
}

impl EventKind {
    /// Stable lowercase name, used in trace export and tests.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::NodeDispatch { .. } => "node_dispatch",
            EventKind::ChannelPush { .. } => "channel_push",
            EventKind::ChannelPop { .. } => "channel_pop",
            EventKind::Wake { .. } => "wake",
            EventKind::SegmentFire { .. } => "segment_fire",
            EventKind::DramAccess { .. } => "dram_access",
            EventKind::CompileStage { .. } => "compile_stage",
        }
    }
}

/// One recorded event: what happened, when (tick), and on which thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic per-sink sequence number (used as the timestamp).
    pub tick: u64,
    /// Dense id of the recording thread.
    pub thread: u32,
    /// The typed payload.
    pub kind: EventKind,
}

/// Dense per-thread tag for trace events (assigned on first use).
pub(crate) fn thread_tag() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static TAG: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// Bounded FIFO of trace events: when full, the oldest event is dropped and
/// counted, so a long run keeps its most recent window.
#[derive(Debug, Default)]
pub(crate) struct TraceRing {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    pub(crate) const fn new() -> Self {
        TraceRing {
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, cap: usize, ev: TraceEvent) {
        if cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() >= cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    pub(crate) fn append(&mut self, cap: usize, other: &TraceRing) {
        self.dropped += other.dropped;
        for ev in other.events() {
            self.push(cap, ev.clone());
        }
    }
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render events as a Chrome `trace_event` JSON document.
///
/// Instantaneous events use `"ph":"i"`; compile stages render as complete
/// (`"ph":"X"`) events with their measured duration. Ticks are reported in
/// the `ts` microsecond field, so relative order (not wall time) is what
/// the Perfetto timeline shows. `labels[node]`, when present, names the
/// node in the event title.
pub(crate) fn chrome_trace_json(events: &[TraceEvent], labels: &[String]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        let mut name = String::new();
        let mut args = String::new();
        let mut phase = "i";
        let mut dur = 0u64;
        match &ev.kind {
            EventKind::NodeDispatch { node, productive } => {
                name.push_str("dispatch ");
                node_name(&mut name, *node, labels);
                let _ = write!(args, "\"node\":{node},\"productive\":{productive}");
            }
            EventKind::ChannelPush { chan } => {
                let _ = write!(name, "push chan {chan}");
                let _ = write!(args, "\"chan\":{chan}");
            }
            EventKind::ChannelPop { chan } => {
                let _ = write!(name, "pop chan {chan}");
                let _ = write!(args, "\"chan\":{chan}");
            }
            EventKind::Wake { node, cause } => {
                name.push_str("wake ");
                node_name(&mut name, *node, labels);
                let _ = write!(args, "\"node\":{node},\"cause\":\"{}\"", cause.name());
            }
            EventKind::SegmentFire { seg, stages } => {
                let _ = write!(name, "segment {seg}");
                let _ = write!(args, "\"seg\":{seg},\"stages\":{stages}");
            }
            EventKind::DramAccess {
                read_bytes,
                written_bytes,
            } => {
                name.push_str("dram");
                let _ = write!(
                    args,
                    "\"read_bytes\":{read_bytes},\"written_bytes\":{written_bytes}"
                );
            }
            EventKind::CompileStage { stage, micros } => {
                phase = "X";
                dur = (*micros).max(1);
                let _ = write!(name, "compile:{stage}");
                let _ = write!(args, "\"micros\":{micros}");
            }
        }
        out.push_str("{\"name\":\"");
        json_escape(&mut out, &name);
        let _ = write!(
            out,
            "\",\"cat\":\"{}\",\"ph\":\"{phase}\",\"ts\":{},\"pid\":0,\"tid\":{}",
            ev.kind.name(),
            ev.tick,
            ev.thread
        );
        if phase == "X" {
            let _ = write!(out, ",\"dur\":{dur}");
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        out.push_str(&args);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

fn node_name(out: &mut String, node: u32, labels: &[String]) {
    match labels.get(node as usize) {
        Some(l) if !l.is_empty() => out.push_str(l),
        _ => {
            let _ = write!(out, "node {node}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut r = TraceRing::new();
        for i in 0..5u64 {
            r.push(
                3,
                TraceEvent {
                    tick: i,
                    thread: 1,
                    kind: EventKind::ChannelPush { chan: 0 },
                },
            );
        }
        let ticks: Vec<u64> = r.events().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn chrome_json_escapes_and_shapes() {
        let events = vec![
            TraceEvent {
                tick: 0,
                thread: 1,
                kind: EventKind::NodeDispatch {
                    node: 0,
                    productive: true,
                },
            },
            TraceEvent {
                tick: 1,
                thread: 1,
                kind: EventKind::CompileStage {
                    stage: "parse",
                    micros: 12,
                },
            },
        ];
        let labels = vec!["a\"b".to_string()];
        let json = chrome_trace_json(&events, &labels);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("dispatch a\\\"b"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":12"));
    }
}
