//! Lock-free metric primitives and a named registry.
//!
//! All three instrument types are plain atomics: recording is a single
//! relaxed RMW, safe to call from any worker thread without coordination.
//! Aggregation across workers mirrors [`ExecReport::merge`] in the machine
//! crate: counters and histogram buckets add, gauges keep the maximum.
//!
//! [`ExecReport::merge`]: https://docs.rs/revet-machine

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A counter at zero. `const` so counters can live in `static` sinks.
    pub const fn new() -> Self {
        Counter {
            v: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Fold another counter in (sum semantics).
    pub fn merge(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A last-value / high-watermark instrument.
///
/// `set` overwrites, `record_max` keeps the maximum ever seen. Merging two
/// gauges keeps the maximum: a watermark observed by *any* worker is a
/// watermark of the whole run.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            v: AtomicU64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Raise the value to `n` if `n` is larger.
    #[inline]
    pub fn record_max(&self, n: u64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Fold another gauge in (max semantics).
    pub fn merge(&self, other: &Gauge) {
        self.record_max(other.get());
    }
}

/// Number of power-of-two buckets in a [`Histogram`].
pub const HIST_BUCKETS: usize = 64;

/// A log2-bucketed histogram with nearest-rank percentiles.
///
/// Bucket `0` holds the value `0`; bucket `b > 0` holds values in
/// `[2^(b-1), 2^b - 1]`. Percentile queries return the *upper bound* of the
/// bucket containing the nearest-rank sample, so reported values are
/// conservative (never below the true percentile by more than one bucket).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            (1u64 << b).saturating_sub(1).max(1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Nearest-rank percentile (`p` in `0.0..=100.0`), bucket upper bound.
    ///
    /// Returns `None` when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::bucket_upper(b));
            }
        }
        None
    }

    /// Fold another histogram in (bucket-wise sum).
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// A named registry of dynamically created instruments.
///
/// Registration takes a mutex; the returned `Arc` handles record lock-free.
/// Registering the same name twice returns the same instrument, so call
/// sites don't need to coordinate.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry, `const` for `static` sinks.
    pub const fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Get or create the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Fold another registry in: counters add, gauges max, histogram
    /// buckets add. Instruments unknown to `self` are created.
    pub fn merge(&self, other: &Registry) {
        for (name, c) in other.counters.lock().unwrap().iter() {
            self.counter(name).merge(c);
        }
        for (name, g) in other.gauges.lock().unwrap().iter() {
            self.gauge(name).merge(g);
        }
        for (name, h) in other.histograms.lock().unwrap().iter() {
            self.histogram(name).merge(h);
        }
    }

    /// Flatten every instrument into sorted `(name, value)` pairs.
    ///
    /// Histograms expand into `.count`, `.p50`, `.p95`, and `.p99`
    /// pseudo-counters so the whole registry fits one wire shape.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            out.push((name.clone(), c.get()));
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            out.push((name.clone(), g.get()));
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            out.push((format!("{name}.count"), h.count()));
            for (suffix, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
                out.push((format!("{name}.{suffix}"), h.percentile(p).unwrap_or(0)));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_merges() {
        let a = Counter::new();
        let b = Counter::new();
        a.inc();
        a.add(4);
        b.add(10);
        a.merge(&b);
        assert_eq!(a.get(), 15);
        assert_eq!(b.get(), 10);
    }

    #[test]
    fn gauge_merges_by_max() {
        let a = Gauge::new();
        let b = Gauge::new();
        a.record_max(7);
        a.record_max(3);
        b.set(5);
        a.merge(&b);
        assert_eq!(a.get(), 7);
        b.merge(&a);
        assert_eq!(b.get(), 7);
    }

    #[test]
    fn histogram_nearest_rank_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        // Rank ceil(0.5*7)=4 lands on the sample 2, bucket [2,3] -> upper 3.
        assert_eq!(h.percentile(50.0), Some(3));
        // p100 lands in the bucket of 1000: [512, 1023].
        assert_eq!(h.percentile(100.0), Some(1023));
        // p0 clamps to rank 1: the zero bucket.
        assert_eq!(h.percentile(0.0), Some(0));
    }

    #[test]
    fn histogram_merge_is_bucket_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(6);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(100.0), Some(7));
    }

    #[test]
    fn registry_snapshot_and_merge() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("x").add(1);
        b.counter("x").add(2);
        b.counter("y").add(9);
        b.gauge("peak").record_max(42);
        b.histogram("lat").record(3);
        a.merge(&b);
        let snap = a.snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("x"), Some(3));
        assert_eq!(get("y"), Some(9));
        assert_eq!(get("peak"), Some(42));
        assert_eq!(get("lat.count"), Some(1));
        assert_eq!(get("lat.p99"), Some(3));
    }
}
