//! # revet-obs — zero-cost-when-disabled observability
//!
//! The instrumentation substrate shared by every layer of the Revet
//! reproduction: the untimed executors and the compiled [`ExecPlan`] in
//! `revet-machine`, the cycle-level simulator, the batch runtime, the
//! compile pipeline, and the serve tier all report through one type —
//! [`ObsSink`].
//!
//! Three complementary views of a run:
//!
//! 1. **Counters** ([`ObsCounters`] + a named [`Registry`]) — lock-free
//!    atomics, mergeable across worker threads exactly like
//!    `ExecReport::merge` (counters add, watermark gauges max, histogram
//!    buckets add).
//! 2. **Trace** — a bounded ring of typed [`TraceEvent`]s (node dispatch,
//!    channel push/pop, wake cause, segment fire, DRAM access, compile
//!    stage) with monotonic-tick timestamps and dense thread ids,
//!    exportable as Chrome `trace_event` JSON via
//!    [`ObsSink::chrome_trace_json`] and loadable in Perfetto.
//! 3. **Stall attribution** — every unproductive scheduler visit is
//!    classified ([`StallClass`]: input-starved / output-full /
//!    allocator-gated / DRAM-gated) and accumulated per node, surfaced as
//!    a sorted top-stalls table.
//!
//! ## Zero cost when disabled
//!
//! Executor hot loops take `&ObsSink` unconditionally. [`ObsSink::noop`]
//! returns a `&'static` sink whose `enabled` flag is `false`; every
//! recording method starts with that one predictable branch and returns
//! immediately, so the instrumented fast path costs a non-atomic load per
//! event site (verified by `exec_bench --baseline` in CI).
//!
//! ```
//! use revet_obs::{ObsSink, StallClass, WakeCause};
//!
//! let sink = ObsSink::with_trace_capacity(1024);
//! sink.node_dispatch(3, true);
//! sink.wake(4, WakeCause::TokenArrival);
//! sink.stall(4, StallClass::InputStarved);
//! assert_eq!(sink.counters.dispatches.get(), 1);
//! assert_eq!(sink.trace_events().len(), 2); // stalls feed the table, not the ring
//! assert_eq!(sink.top_stalls(8)[0].node, 4);
//! assert!(sink.chrome_trace_json().contains("\"traceEvents\""));
//!
//! // The static no-op sink records nothing.
//! let noop = ObsSink::noop();
//! noop.node_dispatch(3, true);
//! assert_eq!(noop.counters.dispatches.get(), 0);
//! ```
//!
//! [`ExecPlan`]: https://docs.rs/revet-machine

#![warn(missing_docs)]

mod metrics;
mod stall;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, Registry, HIST_BUCKETS};
pub use stall::{StallClass, StallRow, STALL_CLASSES};
pub use trace::{EventKind, TraceEvent, WakeCause};

use stall::StallTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use trace::{thread_tag, TraceRing};

/// The fixed, always-registered counter set every executor feeds.
///
/// These are plain public atomics (not registry lookups) so the hot loops
/// touch them without hashing or locking. [`ObsCounters::snapshot`] gives
/// them stable dotted names for wire export.
#[derive(Debug, Default)]
pub struct ObsCounters {
    /// Scheduler steps attempted (one per worklist pop / context fire).
    pub dispatches: Counter,
    /// Dispatches that moved at least one token.
    pub productive: Counter,
    /// Worklist generations (executor rounds / sim cycles).
    pub rounds: Counter,
    /// Fused plan segments fired.
    pub segment_fires: Counter,
    /// Native sink drains executed by the plan.
    pub sink_drains: Counter,
    /// Wakes caused by tokens arriving on an input channel.
    pub wakes_token: Counter,
    /// Wakes caused by a full output channel regaining capacity.
    pub wakes_capacity: Counter,
    /// Wakes caused by an allocator queue receiving a pointer.
    pub wakes_alloc: Counter,
    /// Stalls classified input-starved.
    pub stalls_input_starved: Counter,
    /// Stalls classified output-full.
    pub stalls_output_full: Counter,
    /// Stalls classified allocator-gated.
    pub stalls_alloc_gated: Counter,
    /// Stalls classified DRAM-gated (timed simulator only).
    pub stalls_dram_gated: Counter,
    /// DRAM bytes read (timed simulator only).
    pub dram_read_bytes: Counter,
    /// DRAM bytes written (timed simulator only).
    pub dram_written_bytes: Counter,
    /// Program instances run to completion.
    pub instances: Counter,
    /// High watermark of ready nodes in any one scheduler round.
    pub peak_ready: Gauge,
}

impl ObsCounters {
    /// All counters at zero (`const` for the static no-op sink).
    pub const fn new() -> Self {
        ObsCounters {
            dispatches: Counter::new(),
            productive: Counter::new(),
            rounds: Counter::new(),
            segment_fires: Counter::new(),
            sink_drains: Counter::new(),
            wakes_token: Counter::new(),
            wakes_capacity: Counter::new(),
            wakes_alloc: Counter::new(),
            stalls_input_starved: Counter::new(),
            stalls_output_full: Counter::new(),
            stalls_alloc_gated: Counter::new(),
            stalls_dram_gated: Counter::new(),
            dram_read_bytes: Counter::new(),
            dram_written_bytes: Counter::new(),
            instances: Counter::new(),
            peak_ready: Gauge::new(),
        }
    }

    /// Fold another counter set in (sums; `peak_ready` by max).
    pub fn merge(&self, other: &ObsCounters) {
        for (a, b) in self.all().iter().zip(other.all().iter()) {
            a.1.merge(b.1);
        }
        self.peak_ready.merge(&other.peak_ready);
    }

    fn all(&self) -> [(&'static str, &Counter); 15] {
        [
            ("exec.dispatches", &self.dispatches),
            ("exec.productive", &self.productive),
            ("exec.rounds", &self.rounds),
            ("exec.segment_fires", &self.segment_fires),
            ("exec.sink_drains", &self.sink_drains),
            ("exec.wakes.token", &self.wakes_token),
            ("exec.wakes.capacity", &self.wakes_capacity),
            ("exec.wakes.alloc", &self.wakes_alloc),
            ("exec.stalls.input_starved", &self.stalls_input_starved),
            ("exec.stalls.output_full", &self.stalls_output_full),
            ("exec.stalls.alloc_gated", &self.stalls_alloc_gated),
            ("exec.stalls.dram_gated", &self.stalls_dram_gated),
            ("sim.dram_read_bytes", &self.dram_read_bytes),
            ("sim.dram_written_bytes", &self.dram_written_bytes),
            ("exec.instances", &self.instances),
        ]
    }

    /// Stable `(name, value)` pairs for every fixed counter.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .all()
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect();
        out.push(("exec.peak_ready".to_string(), self.peak_ready.get()));
        out
    }

    /// Record a stall in the matching fixed counter.
    fn stall(&self, class: StallClass) {
        match class {
            StallClass::InputStarved => self.stalls_input_starved.inc(),
            StallClass::OutputFull => self.stalls_output_full.inc(),
            StallClass::AllocGated => self.stalls_alloc_gated.inc(),
            StallClass::DramGated => self.stalls_dram_gated.inc(),
        }
    }

    /// Record a wake in the matching fixed counter.
    fn wake(&self, cause: WakeCause) {
        match cause {
            WakeCause::TokenArrival => self.wakes_token.inc(),
            WakeCause::CapacityRelease => self.wakes_capacity.inc(),
            WakeCause::AllocatorPush => self.wakes_alloc.inc(),
        }
    }
}

/// The unified observability sink threaded through every execution layer.
///
/// Construct one with [`ObsSink::with_trace_capacity`] (full tracing),
/// [`ObsSink::counters_only`] (metrics + stalls, no trace ring — what the
/// serve tier uses), or borrow the process-wide disabled sink with
/// [`ObsSink::noop`].
#[derive(Debug)]
pub struct ObsSink {
    enabled: bool,
    trace_cap: usize,
    /// Fixed executor counters, recorded lock-free.
    pub counters: ObsCounters,
    /// Named dynamic instruments (serve latencies, cache stats, ...).
    pub registry: Registry,
    tick: AtomicU64,
    ring: Mutex<TraceRing>,
    stalls: Mutex<StallTable>,
    labels: Mutex<Vec<String>>,
}

static NOOP: ObsSink = ObsSink::disabled();

impl Default for ObsSink {
    fn default() -> Self {
        Self::counters_only()
    }
}

impl ObsSink {
    const fn disabled() -> Self {
        ObsSink {
            enabled: false,
            trace_cap: 0,
            counters: ObsCounters::new(),
            registry: Registry::new(),
            tick: AtomicU64::new(0),
            ring: Mutex::new(TraceRing::new()),
            stalls: Mutex::new(StallTable::new()),
            labels: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide no-op sink: every recording method returns after
    /// one predictable branch. This is what un-instrumented entry points
    /// pass to the executors.
    pub fn noop() -> &'static ObsSink {
        &NOOP
    }

    /// An enabled sink whose trace ring keeps the most recent
    /// `trace_capacity` events (`0` disables the ring but keeps counters
    /// and stall attribution).
    pub fn with_trace_capacity(trace_capacity: usize) -> Self {
        ObsSink {
            enabled: true,
            trace_cap: trace_capacity,
            ..Self::disabled()
        }
    }

    /// An enabled sink with counters and stall attribution but no trace
    /// ring — no mutex traffic on dispatch, suitable for long-lived
    /// servers.
    pub fn counters_only() -> Self {
        Self::with_trace_capacity(0)
    }

    /// Whether this sink records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// An empty sink with the same configuration — one per worker thread;
    /// fold results back with [`ObsSink::merge`].
    pub fn fork(&self) -> ObsSink {
        if self.enabled {
            Self::with_trace_capacity(self.trace_cap)
        } else {
            Self::disabled()
        }
    }

    /// Fold a (typically per-worker) sink into this one: counters and
    /// registry merge by their own semantics, stall rows add, and the
    /// other ring's events append (oldest dropped if over capacity).
    pub fn merge(&self, other: &ObsSink) {
        self.counters.merge(&other.counters);
        self.registry.merge(&other.registry);
        self.stalls
            .lock()
            .unwrap()
            .merge(&other.stalls.lock().unwrap());
        if self.trace_cap > 0 {
            self.ring
                .lock()
                .unwrap()
                .append(self.trace_cap, &other.ring.lock().unwrap());
        }
        let mut labels = self.labels.lock().unwrap();
        let other_labels = other.labels.lock().unwrap();
        if other_labels.len() > labels.len() {
            *labels = other_labels.clone();
        }
        self.tick
            .fetch_max(other.tick.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Name the graph nodes (index = node id) for table and trace output.
    pub fn set_labels(&self, labels: Vec<String>) {
        if self.enabled {
            *self.labels.lock().unwrap() = labels;
        }
    }

    #[inline]
    fn record(&self, kind: EventKind) {
        if self.trace_cap == 0 {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent {
            tick,
            thread: thread_tag(),
            kind,
        };
        self.ring.lock().unwrap().push(self.trace_cap, ev);
    }

    /// Record a scheduler step of `node` (`productive` = it moved tokens).
    #[inline]
    pub fn node_dispatch(&self, node: u32, productive: bool) {
        if !self.enabled {
            return;
        }
        self.counters.dispatches.inc();
        if productive {
            self.counters.productive.inc();
        }
        self.record(EventKind::NodeDispatch { node, productive });
    }

    /// Record the start of a scheduler round with `ready` runnable nodes.
    #[inline]
    pub fn round(&self, ready: u64) {
        if !self.enabled {
            return;
        }
        self.counters.rounds.inc();
        self.counters.peak_ready.record_max(ready);
    }

    /// Record a classified wake of `node`.
    #[inline]
    pub fn wake(&self, node: u32, cause: WakeCause) {
        if !self.enabled {
            return;
        }
        self.counters.wake(cause);
        self.record(EventKind::Wake { node, cause });
    }

    /// Record a classified stall of `node`.
    #[inline]
    pub fn stall(&self, node: u32, class: StallClass) {
        if !self.enabled {
            return;
        }
        self.counters.stall(class);
        self.stalls.lock().unwrap().record(node, class);
    }

    /// Record tokens entering channel `chan`.
    #[inline]
    pub fn channel_push(&self, chan: u32) {
        if !self.enabled {
            return;
        }
        self.record(EventKind::ChannelPush { chan });
    }

    /// Record tokens leaving channel `chan`.
    #[inline]
    pub fn channel_pop(&self, chan: u32) {
        if !self.enabled {
            return;
        }
        self.record(EventKind::ChannelPop { chan });
    }

    /// Record a fused plan segment firing.
    #[inline]
    pub fn segment_fire(&self, seg: u32, stages: u32) {
        if !self.enabled {
            return;
        }
        self.counters.segment_fires.inc();
        self.record(EventKind::SegmentFire { seg, stages });
    }

    /// Record a native sink drain.
    #[inline]
    pub fn sink_drain(&self) {
        if !self.enabled {
            return;
        }
        self.counters.sink_drains.inc();
    }

    /// Record DRAM traffic for one simulator cycle.
    #[inline]
    pub fn dram_access(&self, read_bytes: u64, written_bytes: u64) {
        if !self.enabled {
            return;
        }
        self.counters.dram_read_bytes.add(read_bytes);
        self.counters.dram_written_bytes.add(written_bytes);
        self.record(EventKind::DramAccess {
            read_bytes,
            written_bytes,
        });
    }

    /// Record a finished compile stage with its wall time.
    #[inline]
    pub fn compile_stage(&self, stage: &'static str, micros: u64) {
        if !self.enabled {
            return;
        }
        self.record(EventKind::CompileStage { stage, micros });
    }

    /// Every (name, value) pair: fixed counters first, then the registry.
    pub fn snapshot_counters(&self) -> Vec<(String, u64)> {
        let mut out = self.counters.snapshot();
        out.extend(self.registry.snapshot());
        out
    }

    /// Clone out the trace ring's current contents, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().events().cloned().collect()
    }

    /// Events dropped because the ring was full (or had zero capacity).
    pub fn trace_dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped()
    }

    /// Export the trace as a Chrome `trace_event` JSON document (open in
    /// Perfetto or `chrome://tracing`).
    pub fn chrome_trace_json(&self) -> String {
        let events = self.trace_events();
        let labels = self.labels.lock().unwrap();
        trace::chrome_trace_json(&events, &labels)
    }

    /// The `limit` most-stalled nodes, sorted by total stalls descending.
    pub fn top_stalls(&self, limit: usize) -> Vec<StallRow> {
        self.stalls.lock().unwrap().top(limit)
    }

    /// Render the top-stalls table as aligned text.
    pub fn top_stalls_table(&self, limit: usize) -> String {
        let rows = self.top_stalls(limit);
        let labels = self.labels.lock().unwrap();
        stall::render_top_stalls(&rows, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_records_nothing() {
        let s = ObsSink::noop();
        s.node_dispatch(0, true);
        s.round(9);
        s.wake(1, WakeCause::TokenArrival);
        s.stall(1, StallClass::OutputFull);
        s.dram_access(10, 20);
        s.segment_fire(0, 2);
        assert!(!s.is_enabled());
        assert_eq!(s.counters.dispatches.get(), 0);
        assert_eq!(s.counters.peak_ready.get(), 0);
        assert!(s.trace_events().is_empty());
        assert!(s.top_stalls(10).is_empty());
    }

    #[test]
    fn enabled_sink_counts_and_traces() {
        let s = ObsSink::with_trace_capacity(8);
        s.round(3);
        s.node_dispatch(0, true);
        s.node_dispatch(1, false);
        s.stall(1, StallClass::InputStarved);
        s.wake(0, WakeCause::CapacityRelease);
        s.segment_fire(2, 3);
        s.sink_drain();
        assert_eq!(s.counters.dispatches.get(), 2);
        assert_eq!(s.counters.productive.get(), 1);
        assert_eq!(s.counters.rounds.get(), 1);
        assert_eq!(s.counters.peak_ready.get(), 3);
        assert_eq!(s.counters.wakes_capacity.get(), 1);
        assert_eq!(s.counters.stalls_input_starved.get(), 1);
        assert_eq!(s.counters.segment_fires.get(), 1);
        assert_eq!(s.counters.sink_drains.get(), 1);
        let dispatches = s
            .trace_events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NodeDispatch { .. }))
            .count();
        assert_eq!(dispatches, 2);
        // Ticks are strictly increasing in recording order.
        let ticks: Vec<u64> = s.trace_events().iter().map(|e| e.tick).collect();
        assert!(ticks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn counters_only_sink_skips_the_ring() {
        let s = ObsSink::counters_only();
        s.node_dispatch(0, true);
        s.channel_push(3);
        assert_eq!(s.counters.dispatches.get(), 1);
        assert!(s.trace_events().is_empty());
    }

    #[test]
    fn fork_and_merge_mirror_exec_report_semantics() {
        let root = ObsSink::with_trace_capacity(16);
        root.node_dispatch(0, true);
        root.round(2);
        let w1 = root.fork();
        let w2 = root.fork();
        w1.node_dispatch(1, true);
        w1.round(7);
        w1.stall(1, StallClass::OutputFull);
        w2.node_dispatch(2, false);
        w2.round(4);
        w2.stall(1, StallClass::OutputFull);
        root.merge(&w1);
        root.merge(&w2);
        assert_eq!(root.counters.dispatches.get(), 3);
        assert_eq!(root.counters.rounds.get(), 3);
        // Watermark merges by max, not sum.
        assert_eq!(root.counters.peak_ready.get(), 7);
        let top = root.top_stalls(10);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].counts[StallClass::OutputFull.index()], 2);
        assert_eq!(root.trace_events().len(), 3);
    }

    #[test]
    fn merged_counters_equal_single_sink_totals() {
        // The invariant the runtime's per-worker forking relies on.
        let single = ObsSink::counters_only();
        let root = ObsSink::counters_only();
        let workers: Vec<ObsSink> = (0..4).map(|_| root.fork()).collect();
        for (i, w) in workers.iter().enumerate() {
            for n in 0..(i as u32 + 1) {
                w.node_dispatch(n, n % 2 == 0);
                single.node_dispatch(n, n % 2 == 0);
            }
        }
        for w in &workers {
            root.merge(w);
        }
        assert_eq!(
            root.counters.dispatches.get(),
            single.counters.dispatches.get()
        );
        assert_eq!(
            root.counters.productive.get(),
            single.counters.productive.get()
        );
    }

    #[test]
    fn snapshot_has_stable_names() {
        let s = ObsSink::counters_only();
        s.node_dispatch(0, true);
        s.registry.counter("serve.requests").add(2);
        let snap = s.snapshot_counters();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("exec.dispatches"), Some(1));
        assert_eq!(get("exec.peak_ready"), Some(0));
        assert_eq!(get("serve.requests"), Some(2));
    }

    #[test]
    fn chrome_trace_uses_labels() {
        let s = ObsSink::with_trace_capacity(4);
        s.set_labels(vec!["main.src".to_string()]);
        s.node_dispatch(0, true);
        let json = s.chrome_trace_json();
        assert!(json.contains("dispatch main.src"));
    }
}
