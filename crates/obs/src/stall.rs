//! Per-node stall attribution.
//!
//! Every time a scheduler steps a node and it makes no progress (or defers
//! it without stepping), the executor classifies *why* and records it here.
//! The four classes mirror the ways a Revet context can be gated:
//!
//! * **input-starved** — some input channel has no tokens to consume;
//! * **output-full** — every input is ready but a bounded output channel
//!   has no free capacity;
//! * **allocator-gated** — I/O is ready but the node blocks on an
//!   allocator queue that has not produced a pointer;
//! * **DRAM-gated** — the timed simulator deferred an address generator
//!   because the cycle's DRAM token bucket is empty.

use std::fmt::Write as _;

/// Why a node failed to make progress when the scheduler visited it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallClass {
    /// An input channel had no tokens.
    InputStarved,
    /// A bounded output channel had no capacity.
    OutputFull,
    /// The node blocks on an allocator queue with no pointer available.
    AllocGated,
    /// The simulator's DRAM token bucket was exhausted this cycle.
    DramGated,
}

/// Number of [`StallClass`] variants (row width of the table).
pub const STALL_CLASSES: usize = 4;

impl StallClass {
    /// Dense row index.
    pub fn index(self) -> usize {
        match self {
            StallClass::InputStarved => 0,
            StallClass::OutputFull => 1,
            StallClass::AllocGated => 2,
            StallClass::DramGated => 3,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            StallClass::InputStarved => "input-starved",
            StallClass::OutputFull => "output-full",
            StallClass::AllocGated => "alloc-gated",
            StallClass::DramGated => "dram-gated",
        }
    }
}

/// One row of the rendered top-stalls table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallRow {
    /// Graph node id.
    pub node: u32,
    /// Per-class stall counts, indexed by [`StallClass::index`].
    pub counts: [u64; STALL_CLASSES],
}

impl StallRow {
    /// Sum across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Dense per-node stall counts, grown on demand.
#[derive(Debug, Default)]
pub(crate) struct StallTable {
    rows: Vec<[u64; STALL_CLASSES]>,
}

impl StallTable {
    pub(crate) const fn new() -> Self {
        StallTable { rows: Vec::new() }
    }

    pub(crate) fn record(&mut self, node: u32, class: StallClass) {
        let idx = node as usize;
        if idx >= self.rows.len() {
            self.rows.resize(idx + 1, [0; STALL_CLASSES]);
        }
        self.rows[idx][class.index()] += 1;
    }

    pub(crate) fn merge(&mut self, other: &StallTable) {
        if other.rows.len() > self.rows.len() {
            self.rows.resize(other.rows.len(), [0; STALL_CLASSES]);
        }
        for (dst, src) in self.rows.iter_mut().zip(other.rows.iter()) {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
    }

    /// Non-zero rows sorted by total stalls, descending (ties by node id).
    pub(crate) fn top(&self, limit: usize) -> Vec<StallRow> {
        let mut rows: Vec<StallRow> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, c)| c.iter().any(|&n| n != 0))
            .map(|(node, counts)| StallRow {
                node: node as u32,
                counts: *counts,
            })
            .collect();
        rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.node.cmp(&b.node)));
        rows.truncate(limit);
        rows
    }
}

/// Render a sorted top-stalls table; `labels[node]` names nodes when known.
pub(crate) fn render_top_stalls(rows: &[StallRow], labels: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "node", "total", "input-starv", "output-full", "alloc-gated", "dram-gated"
    );
    if rows.is_empty() {
        let _ = writeln!(out, "(no stalls recorded)");
        return out;
    }
    for row in rows {
        let name = match labels.get(row.node as usize) {
            Some(l) if !l.is_empty() => format!("{} (#{})", l, row.node),
            _ => format!("#{}", row.node),
        };
        let mut name = name;
        if name.len() > 28 {
            name.truncate(25);
            name.push_str("...");
        }
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>12} {:>12} {:>12}",
            name,
            row.total(),
            row.counts[0],
            row.counts[1],
            row.counts[2],
            row.counts[3]
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merge_and_top_ordering() {
        let mut a = StallTable::new();
        let mut b = StallTable::new();
        a.record(0, StallClass::InputStarved);
        a.record(2, StallClass::OutputFull);
        a.record(2, StallClass::OutputFull);
        b.record(2, StallClass::DramGated);
        b.record(5, StallClass::AllocGated);
        a.merge(&b);
        let top = a.top(10);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].node, 2);
        assert_eq!(top[0].counts, [0, 2, 0, 1]);
        assert_eq!(top[0].total(), 3);
        // Ties (node 0 and node 5 both total 1) break by node id.
        assert_eq!(top[1].node, 0);
        assert_eq!(top[2].node, 5);
        // Limit truncates.
        assert_eq!(a.top(1).len(), 1);
    }

    #[test]
    fn render_includes_labels_and_header() {
        let mut t = StallTable::new();
        t.record(1, StallClass::InputStarved);
        let rendered =
            render_top_stalls(&t.top(10), &["src".to_string(), "main.filter".to_string()]);
        assert!(rendered.contains("main.filter (#1)"));
        assert!(rendered.contains("input-starv"));
        let empty = render_top_stalls(&[], &[]);
        assert!(empty.contains("no stalls recorded"));
    }
}
