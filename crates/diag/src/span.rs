//! Byte spans and the source map that resolves them to lines and columns.

use std::fmt;

/// A half-open byte range `[start, end)` into one source text.
///
/// Spans are plain byte offsets — cheap to carry through every compiler
/// stage — and only turn into line/column pairs at render time, via a
/// [`SourceMap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: u32,
    /// One past the last byte.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Span {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at `at` (caret position for "expected X here").
    pub fn point(at: u32) -> Span {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// True for zero-width (point) spans.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A 1-based line/column pair resolved from a byte offset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineCol {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (byte column within the line).
    pub col: u32,
}

/// One source text plus its precomputed line table.
///
/// Built once per compile; every [`Span`](crate::Span) produced while
/// compiling that text resolves through it.
#[derive(Clone, Debug)]
pub struct SourceMap {
    src: String,
    name: String,
    /// Byte offset of the first byte of each line (line 1 starts at 0).
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Builds the line table for `src`; the origin renders as `<input>`.
    pub fn new(src: impl Into<String>) -> SourceMap {
        SourceMap::with_name(src, "<input>")
    }

    /// Builds the line table for `src` with an explicit origin name (a
    /// file path, usually) used in rendered diagnostics.
    pub fn with_name(src: impl Into<String>, name: impl Into<String>) -> SourceMap {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            src,
            name: name.into(),
            line_starts,
        }
    }

    /// The underlying source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The origin name shown in rendered diagnostics.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of lines (a trailing newline does not start a new line of
    /// content, but still counts — mirrors editor line numbering).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Resolves a byte offset to its 1-based line/column. Offsets past the
    /// end clamp to the last position.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.src.len() as u32);
        // Last line start <= offset.
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// The text of a 1-based line, without its trailing newline.
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line as usize).saturating_sub(1);
        let Some(&start) = self.line_starts.get(idx) else {
            return "";
        };
        let end = self
            .line_starts
            .get(idx + 1)
            .map_or(self.src.len(), |&n| n as usize);
        self.src[start as usize..end].trim_end_matches(['\n', '\r'])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Span::point(5).is_empty());
        assert_eq!(Span::new(1, 2).to(Span::new(5, 9)), Span::new(1, 9));
        // Inverted ranges clamp instead of underflowing.
        assert_eq!(Span::new(7, 3), Span::new(7, 7));
    }

    #[test]
    fn line_col_resolution() {
        let m = SourceMap::new("ab\ncd\n\nxyz");
        assert_eq!(m.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(m.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(m.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(m.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(m.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(m.line_col(9), LineCol { line: 4, col: 3 });
        // Past the end clamps.
        assert_eq!(m.line_col(1000), LineCol { line: 4, col: 4 });
    }

    #[test]
    fn line_text_lookup() {
        let m = SourceMap::new("ab\ncd\r\n\nxyz");
        assert_eq!(m.line_text(1), "ab");
        assert_eq!(m.line_text(2), "cd");
        assert_eq!(m.line_text(3), "");
        assert_eq!(m.line_text(4), "xyz");
        assert_eq!(m.line_text(99), "");
    }

    #[test]
    fn empty_source() {
        let m = SourceMap::new("");
        assert_eq!(m.line_count(), 1);
        assert_eq!(m.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(m.line_text(1), "");
    }
}
