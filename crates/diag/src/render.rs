//! Rustc-style diagnostic rendering: source line + caret underline.

use crate::span::{SourceMap, Span};
use crate::{Diagnostic, Severity};
use std::fmt::Write as _;

/// ANSI escape helpers, compiled away when color is off.
struct Paint {
    on: bool,
}

impl Paint {
    fn wrap(&self, code: &str, s: &str) -> String {
        if self.on {
            format!("\x1b[{code}m{s}\x1b[0m")
        } else {
            s.to_string()
        }
    }
    fn severity(&self, sev: Severity, s: &str) -> String {
        match sev {
            Severity::Error => self.wrap("1;31", s),
            Severity::Warning => self.wrap("1;33", s),
            Severity::Note => self.wrap("1;36", s),
        }
    }
    fn bold(&self, s: &str) -> String {
        self.wrap("1", s)
    }
    fn frame(&self, s: &str) -> String {
        self.wrap("1;34", s)
    }
}

/// Renders one diagnostic as a rustc-style snippet block:
///
/// ```text
/// error[E0101]: expected ';', found '}'
///  --> <input>:3:17
///   |
/// 3 |         u32 x = ;
///   |                 ^ expected expression
///   = note: statements end with ';'
/// ```
///
/// Diagnostics without a span render the header and notes only. `color`
/// switches ANSI escapes on (severity-tinted, like rustc's).
pub fn render_diagnostic(d: &Diagnostic, map: &SourceMap, color: bool) -> String {
    let p = Paint { on: color };
    let mut out = String::new();
    let header = format!("{}[{}]", d.severity, d.code);
    let _ = writeln!(
        out,
        "{}{} {}",
        p.severity(d.severity, &header),
        p.bold(":"),
        p.bold(&d.message)
    );

    if let Some(primary) = d.span {
        let lc = map.line_col(primary.start);
        let _ = writeln!(
            out,
            "{} {}:{}:{}",
            p.frame(" -->"),
            map.name(),
            lc.line,
            lc.col
        );

        // Primary snippet, then every secondary label in order.
        let mut snippets: Vec<(Span, &str, char)> = Vec::new();
        let primary_label = d
            .labels
            .iter()
            .find(|(s, _)| *s == primary)
            .map_or("", |(_, m)| m.as_str());
        snippets.push((primary, primary_label, '^'));
        for (s, m) in &d.labels {
            if *s != primary {
                snippets.push((*s, m, '-'));
            }
        }
        let gutter = snippets
            .iter()
            .map(|(s, _, _)| digits(map.line_col(s.start).line))
            .max()
            .unwrap_or(1);
        let bar = p.frame(&format!("{:>gutter$} |", ""));
        let _ = writeln!(out, "{bar}");
        for (span, label, mark) in snippets {
            let lc = map.line_col(span.start);
            let text = map.line_text(lc.line);
            let lineno = p.frame(&format!("{:>gutter$} |", lc.line));
            let _ = writeln!(out, "{lineno} {}", expand_tabs(text));
            // Underline within this line only (spans never render across
            // lines; a multi-line span gets carets to the line's end).
            // Positions are measured in *display* columns — tabs expand to
            // TAB_WIDTH, multibyte chars count once — so the carets line
            // up with the text as printed, not with its byte offsets.
            let start = floor_boundary(text, lc.col as usize - 1);
            let end = floor_boundary(text, start + span.len() as usize);
            let pad = display_width(&text[..start]);
            let width = display_width(&text[start..end.max(start)]).max(1);
            let marks: String = std::iter::repeat_n(mark, width).collect();
            let underline = format!("{}{}", " ".repeat(pad), marks);
            let underline = p.severity(d.severity, &underline);
            if label.is_empty() {
                let _ = writeln!(out, "{bar} {underline}");
            } else {
                let _ = writeln!(out, "{bar} {underline} {label}");
            }
        }
    }
    for note in &d.notes {
        let _ = writeln!(out, "  {} {note}", p.frame("= note:"));
    }
    out
}

/// Tab stop used when normalizing source lines for display.
const TAB_WIDTH: usize = 4;

fn expand_tabs(s: &str) -> String {
    s.replace('\t', &" ".repeat(TAB_WIDTH))
}

/// Columns `s` occupies as printed by [`expand_tabs`]: tabs are
/// TAB_WIDTH wide, every other char one column (East-Asian double-width
/// is approximated as 1 — good enough without a unicode-width table).
fn display_width(s: &str) -> usize {
    s.chars()
        .map(|c| if c == '\t' { TAB_WIDTH } else { 1 })
        .sum()
}

/// Largest char boundary ≤ `i`.
fn floor_boundary(s: &str, i: usize) -> usize {
    let mut i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn digits(n: u32) -> usize {
    (n.checked_ilog10().unwrap_or(0) + 1) as usize
}
