//! # revet-diag — spans, structured diagnostics, and rendering
//!
//! The diagnostics subsystem every compiler stage reports through. A
//! [`Span`] is a byte range into the source; a [`Diagnostic`] is one
//! finding (severity, stable `E`-prefixed code, message, primary span,
//! labels, notes); a [`Diagnostics`] sink accumulates many findings per
//! compile — parser recovery means one run can report every syntax error,
//! not just the first. [`SourceMap`] resolves byte offsets to 1-based
//! line/column pairs, and [`render_diagnostic`] produces the familiar
//! rustc-style snippet:
//!
//! ```text
//! error[E0101]: expected ';', found '}'
//!  --> <input>:3:17
//!   |
//! 3 |         u32 x = 1 + 2
//!   |                 ^
//! ```
//!
//! ```
//! use revet_diag::{codes, Diagnostic, Diagnostics, SourceMap, Span};
//!
//! let map = SourceMap::new("u32 x = ;\n");
//! let mut diags = Diagnostics::new();
//! diags.push(
//!     Diagnostic::error(codes::PARSE_EXPECTED_EXPR, "expected expression, found ';'")
//!         .with_span(Span::new(8, 9)),
//! );
//! let rendered = diags.render(&map, false);
//! assert!(rendered.contains("error[E0103]"));
//! assert!(rendered.contains("1 | u32 x = ;"));
//! assert!(rendered.contains("^"));
//! ```

#![warn(missing_docs)]

mod render;
mod span;

pub use render::render_diagnostic;
pub use span::{LineCol, SourceMap, Span};

use std::fmt;

/// Stable diagnostic codes, grouped by pipeline stage.
///
/// Codes are part of the machine-readable surface (the `revet-serve`
/// `CompileFailed` frame carries them), so they are append-only: never
/// renumber an existing code.
pub mod codes {
    /// Lexer: a character no token starts with.
    pub const LEX_UNEXPECTED_CHAR: &str = "E0001";
    /// Lexer: unterminated char literal or block comment.
    pub const LEX_UNTERMINATED: &str = "E0002";
    /// Lexer: malformed integer literal.
    pub const LEX_BAD_LITERAL: &str = "E0003";
    /// Parser: a specific token was required.
    pub const PARSE_EXPECTED: &str = "E0101";
    /// Parser: unknown type name.
    pub const PARSE_UNKNOWN_TYPE: &str = "E0102";
    /// Parser: an expression was required.
    pub const PARSE_EXPECTED_EXPR: &str = "E0103";
    /// Parser: malformed top-level item.
    pub const PARSE_BAD_ITEM: &str = "E0104";
    /// Parser: error budget exhausted, parse abandoned.
    pub const PARSE_TOO_MANY_ERRORS: &str = "E0105";
    /// Semantic: unknown variable, memory object, or DRAM symbol.
    pub const SEM_UNKNOWN_NAME: &str = "E0201";
    /// Semantic: a name was used as the wrong kind of thing.
    pub const SEM_KIND_MISUSE: &str = "E0202";
    /// Semantic: assignment into a foreach thread's read-only parent scope.
    pub const SEM_READONLY_ASSIGN: &str = "E0203";
    /// Semantic: misplaced or mistyped `yield` / `return`.
    pub const SEM_BAD_YIELD_RETURN: &str = "E0204";
    /// Semantic: any other front-end semantic failure.
    pub const SEM_GENERAL: &str = "E0205";
    /// MIR structural verification failed (a compiler bug surfaced).
    pub const MIR_VERIFY: &str = "E0301";
    /// CFG→dataflow lowering / placement failure.
    pub const DATAFLOW_LOWER: &str = "E0401";

    /// One-line description of a code, for `revetc --explain`-style use.
    pub fn describe(code: &str) -> Option<&'static str> {
        Some(match code {
            LEX_UNEXPECTED_CHAR => "a character no token starts with",
            LEX_UNTERMINATED => "unterminated char literal or block comment",
            LEX_BAD_LITERAL => "malformed integer literal",
            PARSE_EXPECTED => "a specific token was required here",
            PARSE_UNKNOWN_TYPE => "unknown type name",
            PARSE_EXPECTED_EXPR => "an expression was required here",
            PARSE_BAD_ITEM => "malformed top-level item",
            PARSE_TOO_MANY_ERRORS => "error budget exhausted, parse abandoned",
            SEM_UNKNOWN_NAME => "unknown variable, memory object, or DRAM symbol",
            SEM_KIND_MISUSE => "a name was used as the wrong kind of thing",
            SEM_READONLY_ASSIGN => "foreach threads see a read-only parent scope",
            SEM_BAD_YIELD_RETURN => "misplaced or mistyped yield/return",
            SEM_GENERAL => "front-end semantic failure",
            MIR_VERIFY => "MIR structural verification failed",
            DATAFLOW_LOWER => "CFG-to-dataflow lowering or placement failure",
            _ => return None,
        })
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Advisory.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// The compile fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: severity, stable code, message, and source attribution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// How serious.
    pub severity: Severity,
    /// Stable `E`-prefixed code (see [`codes`]).
    pub code: &'static str,
    /// Human-readable one-liner.
    pub message: String,
    /// Primary location; `None` for diagnostics with no source anchor
    /// (e.g. internal verifier failures on synthesized ops).
    pub span: Option<Span>,
    /// Labeled secondary (or primary) spans; a label whose span equals the
    /// primary renders inline under the caret.
    pub labels: Vec<(Span, String)>,
    /// Free-form trailing notes.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// An error diagnostic with no span yet.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span: None,
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A warning diagnostic with no span yet.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Sets the primary span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Sets the primary span only if none is attached yet (used by outer
    /// layers to supply coarser fallback locations).
    pub fn or_span(mut self, span: Span) -> Diagnostic {
        self.span.get_or_insert(span);
        self
    }

    /// Adds a labeled span.
    pub fn with_label(mut self, span: Span, label: impl Into<String>) -> Diagnostic {
        self.labels.push((span, label.into()));
        self
    }

    /// Adds a trailing note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    /// Compact one-line form (no source snippet — use
    /// [`render_diagnostic`] when a [`SourceMap`] is at hand).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// An accumulating sink of diagnostics — one compile, many findings.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Records one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Absorbs another sink's diagnostics.
    pub fn extend(&mut self, other: Diagnostics) {
        self.diags.extend(other.diags);
    }

    /// All diagnostics, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// The diagnostics as a slice.
    pub fn as_slice(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consumes the sink into its diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Total recorded diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True when at least one error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Stable-sorts diagnostics into source order (span-less ones last) —
    /// producers that interleave stages (lexer + recovering parser) call
    /// this so the report reads top-to-bottom.
    pub fn sort_by_span(&mut self) {
        self.diags
            .sort_by_key(|d| d.span.map_or((true, 0), |s| (false, s.start)));
    }

    /// Renders every diagnostic as a rustc-style snippet block (blocks
    /// separated by blank lines).
    pub fn render(&self, map: &SourceMap, color: bool) -> String {
        self.diags
            .iter()
            .map(|d| render_diagnostic(d, map, color))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Diagnostics {
        Diagnostics { diags: vec![d] }
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Diagnostics {
        Diagnostics {
            diags: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl fmt::Display for Diagnostics {
    /// Compact multi-line form, one diagnostic per line (`Display` has no
    /// access to the source; use [`Diagnostics::render`] for snippets).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (SourceMap, Diagnostic) {
        let map = SourceMap::new("void main() {\n  u32 x = ;\n}\n");
        let d = Diagnostic::error(codes::PARSE_EXPECTED_EXPR, "expected expression, found ';'")
            .with_span(Span::new(24, 25))
            .with_label(Span::new(24, 25), "an initializer is required here")
            .with_note("declarations may omit '= init' entirely");
        (map, d)
    }

    #[test]
    fn renders_caret_snippet() {
        let (map, d) = sample();
        let r = render_diagnostic(&d, &map, false);
        assert_eq!(
            r,
            "error[E0103]: expected expression, found ';'\n \
             --> <input>:2:11\n  \
             |\n\
             2 |   u32 x = ;\n  \
             |           ^ an initializer is required here\n  \
             = note: declarations may omit '= init' entirely\n"
        );
    }

    #[test]
    fn color_render_wraps_but_preserves_text() {
        let (map, d) = sample();
        let plain = render_diagnostic(&d, &map, false);
        let colored = render_diagnostic(&d, &map, true);
        assert!(colored.contains("\x1b[1;31m"));
        // Stripping the escapes recovers exactly the plain render.
        let mut stripped = String::new();
        let mut rest = colored.as_str();
        while let Some(i) = rest.find('\x1b') {
            stripped.push_str(&rest[..i]);
            let after = &rest[i..];
            let m = after.find('m').expect("escape terminator");
            rest = &after[m + 1..];
        }
        stripped.push_str(rest);
        assert_eq!(stripped, plain);
    }

    #[test]
    fn spanless_diagnostic_renders_header_only() {
        let map = SourceMap::new("x");
        let d = Diagnostic::error(codes::MIR_VERIFY, "use of undefined value %9")
            .with_note("this is a compiler bug");
        let r = render_diagnostic(&d, &map, false);
        assert_eq!(
            r,
            "error[E0301]: use of undefined value %9\n  = note: this is a compiler bug\n"
        );
    }

    #[test]
    fn sink_accumulates_and_counts() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.push(Diagnostic::warning(codes::SEM_GENERAL, "w"));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::error(codes::PARSE_EXPECTED, "e1"));
        ds.push(Diagnostic::error(codes::PARSE_EXPECTED, "e2").with_span(Span::new(0, 1)));
        assert!(ds.has_errors());
        assert_eq!(ds.error_count(), 2);
        assert_eq!(ds.len(), 3);
        let text = ds.to_string();
        assert!(text.contains("warning[E0205]: w"));
        assert!(text.contains("error[E0101]: e2"));
    }

    #[test]
    fn codes_describe_themselves() {
        for c in [
            codes::LEX_UNEXPECTED_CHAR,
            codes::PARSE_EXPECTED,
            codes::SEM_READONLY_ASSIGN,
            codes::MIR_VERIFY,
            codes::DATAFLOW_LOWER,
        ] {
            assert!(codes::describe(c).is_some(), "{c}");
        }
        assert!(codes::describe("E9999").is_none());
    }

    #[test]
    fn carets_align_on_tabs_and_multibyte_prefixes() {
        // "\tu32 λ = ;" — a tab (1 byte, 4 display columns) and a 'λ'
        // (2 bytes, 1 column) precede the ';' at byte offset 10.
        let src = "\tu32 λ = ;";
        let map = SourceMap::new(src);
        let d = Diagnostic::error(codes::PARSE_EXPECTED_EXPR, "x").with_span(Span::new(10, 11));
        let r = render_diagnostic(&d, &map, false);
        // The line prints with the tab expanded…
        assert!(r.contains("1 |     u32 λ = ;\n"), "{r}");
        // …and the caret sits under the ';': 4 (tab) + "u32 λ = " (8
        // chars) = 12 display columns of padding.
        assert!(r.contains(&format!("| {}^\n", " ".repeat(12))), "{r}");
    }

    #[test]
    fn multi_line_span_clamps_to_first_line() {
        let map = SourceMap::new("abc\ndef\n");
        let d = Diagnostic::error(codes::PARSE_EXPECTED, "x").with_span(Span::new(1, 7));
        let r = render_diagnostic(&d, &map, false);
        assert!(r.contains("1 | abc\n"), "{r}");
        assert!(r.contains("|  ^^\n"), "{r}");
    }
}
