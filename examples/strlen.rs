//! The paper's Fig. 7 case study: strlen() over a string table, using
//! views, replicate, demand-filled read iterators, and a data-dependent
//! while loop — compiled to dataflow and timed.
//!
//! Run with: `cargo run --example strlen`

use revet::compiler::{Compiler, PassOptions};
use revet::sim::{IdealModels, RdaConfig, Simulator};
use revet_sltf::Word;

fn main() {
    let source = r#"
        dram<u8> input;
        dram<u32> offsets;
        dram<u32> lengths;
        void main(u32 count) {
            foreach (count by 4) { u32 outer =>
                readview<4> in_view(offsets, outer);
                writeview<4> out_view(lengths, outer);
                foreach (4) { u32 idx =>
                    u32 len = 0;
                    u32 off = in_view[idx];
                    replicate (4) {
                        readit<8> it(input, off);
                        while (*it) {
                            len = len + 1;
                            it++;
                        };
                    };
                    out_view[idx] = len;
                };
            };
        }
    "#;
    let strings: Vec<String> = (0..16)
        .map(|i| {
            "dataflow-threads!"
                .chars()
                .cycle()
                .take(i * 3 % 23)
                .collect()
        })
        .collect();
    let mut input = Vec::new();
    let mut offsets = Vec::new();
    for s in &strings {
        offsets.extend((input.len() as u32).to_le_bytes());
        input.extend(s.as_bytes());
        input.push(0);
    }
    let opts = PassOptions {
        dram_bytes: 3 << 16,
        ..PassOptions::default()
    };
    let mut program = Compiler::new(opts)
        .compile_source(source)
        .unwrap_or_else(|e| {
            eprint!("{}", e.render(source, true));
            std::process::exit(1);
        });
    let slice = (3 << 16) / 3;
    program.graph.mem.dram[..input.len()].copy_from_slice(&input);
    program.graph.mem.dram[slice..slice + offsets.len()].copy_from_slice(&offsets);
    let sim = Simulator::new(RdaConfig::default(), IdealModels::default());
    let stats = sim
        .run(&mut program, &[Word(strings.len() as u32)], 50_000_000)
        .expect("runs");
    println!(
        "strlen over {} strings in {} cycles:",
        strings.len(),
        stats.cycles
    );
    for (i, s) in strings.iter().enumerate() {
        let got = u32::from_le_bytes(
            program.graph.mem.dram[2 * slice + 4 * i..2 * slice + 4 * i + 4]
                .try_into()
                .unwrap(),
        );
        assert_eq!(got as usize, s.len());
        println!("  strlen({s:?}) = {got}");
    }
}
