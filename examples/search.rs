//! Table III's `search` application from the public registry: exact-match
//! text search with Horspool skips (the nested data-dependent while loops
//! that MapReduce-style front ends cannot express), validated against the
//! oracle and timed on the vRDA model.
//!
//! Run with: `cargo run --example search`

use revet::apps;
use revet::compiler::PassOptions;
use revet::sim::{IdealModels, RdaConfig, Simulator};
use revet_sltf::Word;

fn main() {
    let app = apps::app("search").expect("registered");
    let workload = (app.workload)(32, 0xB00C);
    let mut program = app.compile(4, &PassOptions::default()).unwrap_or_else(|e| {
        eprint!("{}", e.render(&(app.source)(4), true));
        std::process::exit(1);
    });
    app.load(&mut program, &workload);
    let args: Vec<Word> = workload.args.iter().map(|&a| Word(a)).collect();
    let sim = Simulator::new(RdaConfig::default(), IdealModels::default());
    let stats = sim.run(&mut program, &args, 500_000_000).expect("runs");
    app.check(&program, &workload);
    println!(
        "search: {} chunks in {} cycles -> {:.2} GB/s (validated against oracle)",
        workload.threads,
        stats.cycles,
        stats.throughput_gbps(workload.app_bytes)
    );
}
