//! Quickstart: compile a tiny Revet program and run it three ways —
//! reference interpreter semantics are implied by the oracle check, the
//! untimed dataflow machine proves functional lowering, and the timed
//! simulator reports cycles.
//!
//! The same flow, with an oracle assertion, is the crate-level doctest on
//! the `revet` facade (`src/lib.rs`), so `cargo test` exercises it.
//!
//! Run with: `cargo run --example quickstart`

use revet::compiler::{Compiler, PassOptions};
use revet::sim::{IdealModels, RdaConfig, Simulator};
use revet_sltf::Word;

fn main() {
    let source = r#"
        dram<u32> input;
        dram<u32> output;
        void main(u32 n) {
            foreach (n) { u32 i =>
                u32 x = input[i];
                u32 steps = 0;
                while (x != 1) {
                    if (x & 1) {
                        x = 3 * x + 1;
                    } else {
                        x = x / 2;
                    };
                    steps = steps + 1;
                };
                output[i] = steps;
            };
        }
    "#;
    let opts = PassOptions {
        dram_bytes: 1 << 16,
        ..PassOptions::default()
    };
    // On failure, render the structured diagnostics as rustc-style caret
    // snippets instead of Debug-printing an error value.
    let mut program = Compiler::new(opts)
        .compile_source(source)
        .unwrap_or_else(|e| {
            eprint!("{}", e.render(source, true));
            std::process::exit(1);
        });
    println!(
        "compiled: {} contexts, {} links",
        program.context_count(),
        program.links.len()
    );
    let n = 8u32;
    for i in 0..n {
        let v = (i + 2).to_le_bytes();
        program.graph.mem.dram[4 * i as usize..4 * i as usize + 4].copy_from_slice(&v);
    }
    let sim = Simulator::new(RdaConfig::default(), IdealModels::default());
    let stats = sim.run(&mut program, &[Word(n)], 10_000_000).expect("runs");
    println!(
        "simulated {} cycles at {} GHz",
        stats.cycles, stats.freq_ghz
    );
    let half = (1 << 16) / 2;
    for i in 0..n as usize {
        let got = u32::from_le_bytes(
            program.graph.mem.dram[half + 4 * i..half + 4 * i + 4]
                .try_into()
                .unwrap(),
        );
        println!("collatz_steps({}) = {}", i + 2, got);
    }
}
