//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of proptest it actually uses:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - integer range strategies (`0u32..20`, `1u8..=4`),
//! - [`any`] for full-domain integers,
//! - [`collection::vec`] with a size range,
//! - [`Strategy::prop_map`] and [`Strategy::boxed`] / [`BoxedStrategy`],
//! - a deterministic [`test_runner::TestRunner`].
//!
//! Shrinking is intentionally not implemented: a failing case reports the
//! case index and message and panics immediately. Generation is fully
//! deterministic (fixed seed), so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! Deterministic generation state, mirroring `proptest::test_runner`.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Drives strategy generation. Always deterministic in this stand-in.
    pub struct TestRunner {
        pub(crate) rng: StdRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed, mirroring
        /// `TestRunner::deterministic()` upstream.
        pub fn deterministic() -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x5EED_CAFE_F00D_D00D),
            }
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            Self::deterministic()
        }
    }
}

use test_runner::TestRunner;

/// Error carried out of a failed property body by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration, mirroring `ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier simulator-backed
        // properties fast while still exercising plenty of shapes.
        ProptestConfig { cases: 64 }
    }
}

/// A generated value. Upstream this is a shrinkable tree; here it is just
/// the current value.
pub struct ValueTree<T>(T);

impl<T: Clone> ValueTree<T> {
    /// The generated value.
    pub fn current(&self) -> T {
        self.0.clone()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Clone;

    /// Generate one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Generate a (non-shrinking) value tree, mirroring upstream's
    /// fallible signature.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<Self::Value>, String> {
        Ok(ValueTree(self.generate(runner)))
    }

    /// Map generated values through `f`.
    fn prop_map<O: Clone, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |runner: &mut TestRunner| {
            self.generate(runner)
        }))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// A type-erased strategy, mirroring `BoxedStrategy<T>`.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRunner) -> T>);

impl<T: Clone> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (self.0)(runner)
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy, mirroring `Arbitrary`.
pub trait Arbitrary: Clone {
    /// Generate an unconstrained value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                use rand::RngCore;
                runner.rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        use rand::RngCore;
        runner.rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Collection sizes accepted by [`collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        SizeRange { lo, hi: hi + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{SizeRange, Strategy, TestRunner};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            use rand::Rng;
            assert!(self.size.lo < self.size.hi, "empty size range");
            let len = runner.rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring `proptest::strategy`.
    pub use super::{BoxedStrategy, Map, Strategy, ValueTree};
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! The `prop::` path exposed by the upstream prelude.
        pub use crate::collection;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed ({:?} != {:?}): {}",
                a, b, format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both sides are {:?}",
                a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed (both {:?}): {}",
                a, format!($($fmt)+)
            )));
        }
    }};
}

/// Declare property tests, mirroring the upstream `proptest!` macro.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items carrying outer attributes
/// (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::deterministic();
            for case in 0..config.cases {
                $(
                    let $arg = $crate::Strategy::new_tree(&$strat, &mut runner)
                        .unwrap()
                        .current();
                )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 1u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(any::<u32>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn prop_map_applies(s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
        }
    }

    #[test]
    fn boxed_recursion_terminates() {
        fn nested(depth: u8) -> BoxedStrategy<Vec<u32>> {
            if depth == 0 {
                prop::collection::vec(any::<u32>(), 0..3).boxed()
            } else {
                nested(depth - 1)
                    .prop_map(|mut v| {
                        v.push(0);
                        v
                    })
                    .boxed()
            }
        }
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let v = nested(3).new_tree(&mut runner).unwrap().current();
        assert!(v.len() >= 3);
    }
}
