//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of Criterion it actually uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of Criterion's statistical pipeline it
//! reports the mean wall-clock time over `sample_size` iterations after one
//! warm-up iteration.

use std::time::{Duration, Instant};

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Mirror of `Criterion::default().configure_from_args()`; CLI arguments
    /// are accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one("", &name.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Time `f` and print the mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &name.into(), self.sample_size, f);
        self
    }

    /// Finish the group (a no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.iters > 0 {
        let mean = b.elapsed / b.iters as u32;
        println!("bench {label:40} {mean:>12.2?}/iter ({} iters)", b.iters);
    } else {
        println!("bench {label:40} (no measurement)");
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // one warm-up + three timed iterations
        assert_eq!(calls, 4);
    }
}
