//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of `rand` it actually uses: `rngs::StdRng`, `SeedableRng`, and
//! the `Rng` extension methods `gen`, `gen_range`, and `gen_bool`. The
//! generator is SplitMix64 — deterministic, seedable, and statistically fine
//! for workload generation (nothing here is cryptographic).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic seedable generator (SplitMix64 under the hood; the real
    /// `StdRng` is ChaCha12, but callers here only rely on determinism).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by `Rng::gen` (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u32>(), b.gen::<u32>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0..=255u32);
            assert!(y <= 255);
            let z: f64 = r.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
